//! A two-level finite context method (FCM) value predictor
//! (Sazeides & Smith style), exercising the `VHist` concept of Figure 1:
//! the first level maps a load's index to a hash of its recent *value
//! history*; the second level maps that history to the value that
//! followed it before.
//!
//! FCM captures repeating value *sequences* (e.g. 1, 2, 3, 1, 2, 3, …)
//! that last-value and stride predictors miss. For constant values it
//! degenerates to an LVP — so every attack in the paper applies to it
//! unchanged, reinforcing the §IV-D3 point that the leak is inherent to
//! value prediction, not to one predictor design.

use std::collections::HashMap;

use crate::index::IndexConfig;
use crate::stats::PredictorStats;
use crate::{LoadContext, Predicted, ValuePredictor};

/// Configuration for [`Fcm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcmConfig {
    /// Index formation for the first-level (per-load) table.
    pub index: IndexConfig,
    /// History depth: how many recent values form the context.
    pub history_depth: usize,
    /// Number of confirmations required before predicting.
    pub confidence_threshold: u32,
    /// Saturation cap for confidence counters.
    pub max_confidence: u32,
    /// Capacity of the first-level table.
    pub l1_capacity: usize,
    /// Capacity of the second-level (context → value) table.
    pub l2_capacity: usize,
}

impl Default for FcmConfig {
    fn default() -> Self {
        FcmConfig {
            index: IndexConfig::default(),
            history_depth: 4,
            confidence_threshold: 3,
            max_confidence: 15,
            l1_capacity: 256,
            l2_capacity: 1024,
        }
    }
}

/// First-level entry: the load's recent value history.
#[derive(Debug, Clone)]
struct HistoryEntry {
    values: Vec<u64>,
    seq: u64,
}

/// Second-level entry: the value that followed a context.
#[derive(Debug, Clone, Copy)]
struct ContextEntry {
    value: u64,
    confidence: u32,
    seq: u64,
}

/// The two-level FCM predictor.
#[derive(Debug)]
pub struct Fcm {
    config: FcmConfig,
    level1: HashMap<u64, HistoryEntry>,
    level2: HashMap<u64, ContextEntry>,
    stats: PredictorStats,
    next_seq: u64,
}

impl Fcm {
    /// Build an FCM from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the history depth, threshold or capacities are zero.
    #[must_use]
    pub fn new(config: FcmConfig) -> Fcm {
        assert!(config.history_depth >= 1, "history depth must be >= 1");
        assert!(config.confidence_threshold >= 1, "threshold must be >= 1");
        assert!(
            config.l1_capacity >= 1 && config.l2_capacity >= 1,
            "capacities must be >= 1"
        );
        Fcm {
            config,
            level1: HashMap::new(),
            level2: HashMap::new(),
            stats: PredictorStats::default(),
            next_seq: 0,
        }
    }

    /// Hash a value history (order-sensitive) into a level-2 key, mixed
    /// with the load index so different loads' contexts do not collide.
    fn context_key(&self, index: u64, values: &[u64]) -> u64 {
        let mut h = index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (i, v) in values.iter().enumerate() {
            h ^= v
                .wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                .rotate_left((11 * (i as u32 + 1)) & 63);
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        h
    }

    fn evict_l1_if_full(&mut self) {
        if self.level1.len() < self.config.l1_capacity {
            return;
        }
        if let Some((&victim, _)) = self.level1.iter().min_by_key(|(_, e)| e.seq) {
            self.level1.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    fn evict_l2_if_full(&mut self) {
        if self.level2.len() < self.config.l2_capacity {
            return;
        }
        // Evict the least-confident, oldest context.
        if let Some((&victim, _)) = self
            .level2
            .iter()
            .min_by_key(|(_, e)| (e.confidence, e.seq))
        {
            self.level2.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Live entries across both levels (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> (usize, usize) {
        (self.level1.len(), self.level2.len())
    }
}

impl ValuePredictor for Fcm {
    fn lookup(&mut self, ctx: &LoadContext) -> Option<Predicted> {
        self.stats.lookups += 1;
        let index = self.config.index.index(ctx);
        let prediction = self.level1.get(&index).and_then(|h| {
            let key = self.context_key(index, &h.values);
            self.level2.get(&key).copied()
        });
        match prediction {
            Some(e) if e.confidence >= self.config.confidence_threshold => {
                self.stats.predictions += 1;
                Some(Predicted {
                    value: e.value,
                    confidence: e.confidence,
                })
            }
            _ => {
                self.stats.no_predictions += 1;
                None
            }
        }
    }

    fn train(&mut self, ctx: &LoadContext, actual: u64, prediction: Option<u64>) {
        self.stats.trainings += 1;
        match prediction {
            Some(p) if p == actual => self.stats.correct += 1,
            Some(_) => self.stats.incorrect += 1,
            None => {}
        }
        let index = self.config.index.index(ctx);
        let depth = self.config.history_depth;
        let max_conf = self.config.max_confidence;
        // Update the context → value mapping for the *previous* history.
        if let Some(h) = self.level1.get(&index) {
            let key = self.context_key(index, &h.values);
            match self.level2.get_mut(&key) {
                Some(e) => {
                    if e.value == actual {
                        e.confidence = (e.confidence + 1).min(max_conf);
                    } else {
                        e.value = actual;
                        e.confidence = 1;
                    }
                }
                None => {
                    self.evict_l2_if_full();
                    self.level2.insert(
                        key,
                        ContextEntry {
                            value: actual,
                            confidence: 1,
                            seq: self.next_seq,
                        },
                    );
                }
            }
        }
        // Shift the history.
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.level1.get_mut(&index) {
            Some(h) => {
                h.values.insert(0, actual);
                h.values.truncate(depth);
                h.seq = seq;
            }
            None => {
                self.evict_l1_if_full();
                self.level1.insert(
                    index,
                    HistoryEntry {
                        values: vec![actual],
                        seq,
                    },
                );
            }
        }
    }

    fn reset(&mut self) {
        self.level1.clear();
        self.level2.clear();
        self.stats = PredictorStats::default();
        self.next_seq = 0;
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fcm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64) -> LoadContext {
        LoadContext {
            pc,
            addr: 0,
            pid: 0,
        }
    }

    fn drive(vp: &mut Fcm, pc: u64, v: u64) -> Option<u64> {
        let c = ctx(pc);
        let p = vp.lookup(&c).map(|p| p.value);
        vp.train(&c, v, p);
        p
    }

    #[test]
    fn constant_values_predict_like_lvp() {
        let mut vp = Fcm::new(FcmConfig::default());
        for _ in 0..8 {
            drive(&mut vp, 0x40, 42);
        }
        assert_eq!(vp.lookup(&ctx(0x40)).unwrap().value, 42);
    }

    #[test]
    fn repeating_sequence_predicted() {
        // The pattern 1,2,3,1,2,3,… is invisible to LVP/stride but FCM
        // learns context → next-value.
        let mut vp = Fcm::new(FcmConfig::default());
        let pattern = [1u64, 2, 3];
        let mut correct = 0;
        let mut total = 0;
        for round in 0..40 {
            let v = pattern[round % 3];
            let p = drive(&mut vp, 0x40, v);
            if round > 20 {
                total += 1;
                if p == Some(v) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "FCM should lock onto the period-3 pattern: {correct}/{total}"
        );
    }

    #[test]
    fn differing_value_lowers_confidence() {
        let mut vp = Fcm::new(FcmConfig::default());
        for _ in 0..8 {
            drive(&mut vp, 0x40, 7);
        }
        assert!(vp.lookup(&ctx(0x40)).is_some());
        drive(&mut vp, 0x40, 9); // breaks the context chain
        assert!(
            vp.lookup(&ctx(0x40)).is_none(),
            "stale context must not predict above threshold"
        );
    }

    #[test]
    fn independent_loads() {
        let mut vp = Fcm::new(FcmConfig::default());
        for _ in 0..8 {
            drive(&mut vp, 0x40, 1);
        }
        assert!(vp.lookup(&ctx(0x40)).is_some());
        assert!(vp.lookup(&ctx(0x80)).is_none());
    }

    #[test]
    fn capacity_eviction_l1() {
        let mut vp = Fcm::new(FcmConfig {
            l1_capacity: 2,
            ..FcmConfig::default()
        });
        drive(&mut vp, 0x40, 1);
        drive(&mut vp, 0x44, 2);
        drive(&mut vp, 0x48, 3);
        assert_eq!(vp.occupancy().0, 2);
        assert!(vp.stats().evictions >= 1);
    }

    #[test]
    fn reset_clears_both_levels() {
        let mut vp = Fcm::new(FcmConfig::default());
        for _ in 0..5 {
            drive(&mut vp, 0x40, 1);
        }
        vp.reset();
        assert_eq!(vp.occupancy(), (0, 0));
        assert!(vp.lookup(&ctx(0x40)).is_none());
    }

    #[test]
    fn stats_invariants() {
        let mut vp = Fcm::new(FcmConfig::default());
        for i in 0..50u64 {
            drive(&mut vp, 0x40 + (i % 3) * 4, i % 5);
        }
        let s = vp.stats();
        assert_eq!(s.lookups, s.predictions + s.no_predictions);
        assert!(s.correct + s.incorrect <= s.predictions);
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn zero_depth_rejected() {
        let _ = Fcm::new(FcmConfig {
            history_depth: 0,
            ..FcmConfig::default()
        });
    }
}
