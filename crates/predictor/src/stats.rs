//! Predictor accuracy and occupancy statistics.

/// Counters accumulated by a [`ValuePredictor`](crate::ValuePredictor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// `lookup` calls (one per L1-miss load).
    pub lookups: u64,
    /// Lookups that produced a prediction.
    pub predictions: u64,
    /// Lookups that produced no prediction (below confidence / no entry).
    pub no_predictions: u64,
    /// `train` calls.
    pub trainings: u64,
    /// Predictions later verified correct.
    pub correct: u64,
    /// Predictions later verified incorrect (squash + reissue).
    pub incorrect: u64,
    /// Entries evicted for capacity (smallest usefulness first).
    pub evictions: u64,
}

impl PredictorStats {
    /// Fraction of lookups that predicted, in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.predictions as f64 / self.lookups as f64
        }
    }

    /// Fraction of verified predictions that were correct, in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let verified = self.correct + self.incorrect;
        if verified == 0 {
            0.0
        } else {
            self.correct as f64 / verified as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &PredictorStats) {
        self.lookups += other.lookups;
        self.predictions += other.predictions;
        self.no_predictions += other.no_predictions;
        self.trainings += other.trainings;
        self.correct += other.correct;
        self.incorrect += other.incorrect;
        self.evictions += other.evictions;
    }
}

impl std::fmt::Display for PredictorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} lookups, {:.1}% coverage, {:.1}% accuracy, {} evictions",
            self.lookups,
            self.coverage() * 100.0,
            self.accuracy() * 100.0,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = PredictorStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn rates_math() {
        let s = PredictorStats {
            lookups: 10,
            predictions: 5,
            no_predictions: 5,
            correct: 4,
            incorrect: 1,
            ..Default::default()
        };
        assert!((s.coverage() - 0.5).abs() < 1e-12);
        assert!((s.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PredictorStats {
            lookups: 1,
            correct: 2,
            ..Default::default()
        };
        let b = PredictorStats {
            lookups: 3,
            correct: 4,
            evictions: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 4);
        assert_eq!(a.correct, 6);
        assert_eq!(a.evictions, 1);
    }

    #[test]
    fn display_nonempty() {
        assert!(!PredictorStats::default().to_string().is_empty());
    }
}
