//! The oracle filter: predict only for designated target loads.
//!
//! The paper's experimental setup (§IV-C) uses "an oracle VTAGE" that
//! "makes predictions only for the target load instruction to maximize
//! the attacker's advantage". [`Oracle`] wraps any predictor and
//! suppresses predictions for loads outside the target set; training is
//! unrestricted so the wrapped predictor's state still evolves normally.

use std::collections::HashSet;

use crate::stats::PredictorStats;
use crate::{LoadContext, Predicted, ValuePredictor};

/// A predictor wrapper that only predicts for chosen load PCs.
#[derive(Debug)]
pub struct Oracle<P> {
    inner: P,
    /// Byte addresses of load instructions allowed to predict.
    targets: HashSet<u64>,
}

impl<P: ValuePredictor> Oracle<P> {
    /// Wrap `inner`, allowing predictions only at the given load PCs
    /// (byte addresses).
    #[must_use]
    pub fn new(inner: P, targets: impl IntoIterator<Item = u64>) -> Oracle<P> {
        Oracle {
            inner,
            targets: targets.into_iter().collect(),
        }
    }

    /// Add another target load PC.
    pub fn add_target(&mut self, pc: u64) {
        self.targets.insert(pc);
    }

    /// Access the wrapped predictor.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap, returning the inner predictor.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: ValuePredictor> ValuePredictor for Oracle<P> {
    fn lookup(&mut self, ctx: &LoadContext) -> Option<Predicted> {
        if self.targets.contains(&ctx.pc) {
            self.inner.lookup(ctx)
        } else {
            None
        }
    }

    fn train(&mut self, ctx: &LoadContext, actual: u64, prediction: Option<u64>) {
        self.inner.train(ctx, actual, prediction);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn stats(&self) -> PredictorStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn chaos_events(&self) -> Option<vpsim_chaos::ChaosEvents> {
        self.inner.chaos_events()
    }

    fn set_tracing(&mut self, on: bool) {
        self.inner.set_tracing(on);
    }

    fn drain_trace(&mut self, f: &mut dyn FnMut(vpsim_obs::TraceEvent)) {
        self.inner.drain_trace(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvp::{Lvp, LvpConfig};

    fn trained_oracle(target: u64) -> Oracle<Lvp> {
        let mut o = Oracle::new(Lvp::new(LvpConfig::default()), [target]);
        for pc in [0x40u64, 0x80] {
            let ctx = LoadContext {
                pc,
                addr: 0,
                pid: 0,
            };
            for _ in 0..4 {
                o.train(&ctx, 5, None);
            }
        }
        o
    }

    #[test]
    fn predicts_only_for_target() {
        let mut o = trained_oracle(0x40);
        let target = LoadContext {
            pc: 0x40,
            addr: 0,
            pid: 0,
        };
        let other = LoadContext {
            pc: 0x80,
            addr: 0,
            pid: 0,
        };
        assert!(o.lookup(&target).is_some());
        assert!(
            o.lookup(&other).is_none(),
            "non-target load must not predict"
        );
    }

    #[test]
    fn training_is_unrestricted() {
        let mut o = trained_oracle(0x40);
        // 0x80 was trained even though it can't predict: adding it as a
        // target later immediately enables prediction.
        o.add_target(0x80);
        let other = LoadContext {
            pc: 0x80,
            addr: 0,
            pid: 0,
        };
        assert!(o.lookup(&other).is_some());
    }

    #[test]
    fn into_inner_preserves_state() {
        let o = trained_oracle(0x40);
        let lvp = o.into_inner();
        let view = lvp
            .entry_view(&LoadContext {
                pc: 0x80,
                addr: 0,
                pid: 0,
            })
            .expect("inner entry exists");
        assert_eq!(view.value, 5);
    }
}
