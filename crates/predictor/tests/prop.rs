//! Property-based tests for the predictor crate.

use proptest::prelude::*;
use vpsim_predictor::{
    AlwaysMode, AlwaysPredict, IndexConfig, LoadContext, Lvp, LvpConfig, RandomWindow, Stride,
    StrideConfig, ValuePredictor, Vtage, VtageConfig,
};

fn ctx(pc: u64) -> LoadContext {
    LoadContext { pc, addr: pc ^ 0xaaaa, pid: 0 }
}

proptest! {
    /// LVP never predicts before `threshold` same-value observations.
    #[test]
    fn lvp_threshold_respected(threshold in 1u32..8, value: u64, pc in 0u64..4096) {
        let mut vp = Lvp::new(LvpConfig {
            confidence_threshold: threshold,
            ..LvpConfig::default()
        });
        let c = ctx(pc * 4);
        for i in 0..threshold {
            prop_assert!(vp.lookup(&c).is_none(), "predicted after only {i} trainings");
            vp.train(&c, value, None);
        }
        let p = vp.lookup(&c);
        prop_assert_eq!(p.map(|p| p.value), Some(value));
    }

    /// Once trained, a prediction always equals the last trained value.
    #[test]
    fn lvp_predicts_last_value(values in prop::collection::vec(any::<u64>(), 1..20)) {
        let mut vp = Lvp::new(LvpConfig { confidence_threshold: 1, ..LvpConfig::default() });
        let c = ctx(0x40);
        for v in &values {
            vp.train(&c, *v, None);
        }
        // threshold 1 + same value trains means prediction only after the
        // last value has been seen; retrain it once to confirm.
        vp.train(&c, *values.last().unwrap(), None);
        prop_assert_eq!(vp.lookup(&c).unwrap().value, *values.last().unwrap());
    }

    /// Occupancy never exceeds capacity.
    #[test]
    fn lvp_capacity_bounded(capacity in 1usize..32, pcs in prop::collection::vec(0u64..4096, 1..200)) {
        let mut vp = Lvp::new(LvpConfig { capacity, ..LvpConfig::default() });
        for pc in pcs {
            vp.train(&ctx(pc * 4), pc, None);
            prop_assert!(vp.occupancy() <= capacity);
        }
    }

    /// A different value at the same index always suppresses the next
    /// prediction (the paper's 1-access invalidation).
    #[test]
    fn lvp_single_access_invalidation(value: u64, other: u64, pc in 0u64..1024) {
        prop_assume!(value != other);
        let mut vp = Lvp::new(LvpConfig::default());
        let c = ctx(pc * 4);
        for _ in 0..5 {
            vp.train(&c, value, None);
        }
        prop_assert!(vp.lookup(&c).is_some());
        vp.train(&c, other, None);
        prop_assert!(vp.lookup(&c).is_none());
    }

    /// The A-type wrapper never returns `None` — by construction there is
    /// no observable "no prediction" case left.
    #[test]
    fn always_predict_total(pcs in prop::collection::vec(0u64..4096, 1..100)) {
        let mut vp = AlwaysPredict::new(
            Lvp::new(LvpConfig::default()),
            AlwaysMode::History,
            IndexConfig::default(),
        );
        for pc in pcs {
            prop_assert!(vp.lookup(&ctx(pc * 4)).is_some());
            vp.train(&ctx(pc * 4), pc, None);
        }
    }

    /// R-type predictions always land within the configured window.
    #[test]
    fn random_window_bounded(window in 2u64..32, value in 1000u64..2000, seed: u64) {
        let mut inner = Lvp::new(LvpConfig::default());
        let c = ctx(0x40);
        for _ in 0..4 {
            inner.train(&c, value, None);
        }
        let mut vp = RandomWindow::new(inner, window, seed);
        let lo = value - (window - 1) / 2;
        let hi = lo + window - 1;
        for _ in 0..64 {
            let v = vp.lookup(&c).unwrap().value;
            prop_assert!((lo..=hi).contains(&v), "{v} outside [{lo}, {hi}]");
        }
    }

    /// Stride with constant values behaves exactly like an LVP.
    #[test]
    fn stride_equals_lvp_on_constants(value: u64, n in 3usize..10) {
        let mut lvp = Lvp::new(LvpConfig::default());
        let mut stride = Stride::new(StrideConfig::default());
        let c = ctx(0x40);
        for _ in 0..n {
            lvp.train(&c, value, None);
            stride.train(&c, value, None);
        }
        prop_assert_eq!(
            lvp.lookup(&c).map(|p| p.value),
            stride.lookup(&c).map(|p| p.value)
        );
    }

    /// VTAGE is deterministic: identical streams give identical outputs.
    #[test]
    fn vtage_deterministic(stream in prop::collection::vec((0u64..64, 0u64..8), 1..100)) {
        let mut a = Vtage::new(VtageConfig::default());
        let mut b = Vtage::new(VtageConfig::default());
        for (pc, v) in stream {
            let c = ctx(pc * 4);
            let pa = a.lookup(&c).map(|p| p.value);
            prop_assert_eq!(pa, b.lookup(&c).map(|p| p.value));
            a.train(&c, v, pa);
            b.train(&c, v, pa);
        }
    }

    /// Stats invariants: lookups = predictions + no_predictions, and
    /// verified outcomes never exceed predictions.
    #[test]
    fn stats_invariants(stream in prop::collection::vec((0u64..16, 0u64..4), 1..200)) {
        let mut vp = Lvp::new(LvpConfig::default());
        for (pc, v) in stream {
            let c = ctx(pc * 4);
            let p = vp.lookup(&c);
            vp.train(&c, v, p.map(|p| p.value));
        }
        let s = vp.stats();
        prop_assert_eq!(s.lookups, s.predictions + s.no_predictions);
        prop_assert!(s.correct + s.incorrect <= s.predictions);
        prop_assert!(s.coverage() >= 0.0 && s.coverage() <= 1.0);
        prop_assert!(s.accuracy() >= 0.0 && s.accuracy() <= 1.0);
    }
}
