//! Randomized-property tests for the predictor crate, driven by a
//! seeded [`SmallRng`] so every failure reproduces exactly.

use vpsim_predictor::{
    AlwaysMode, AlwaysPredict, IndexConfig, LoadContext, Lvp, LvpConfig, RandomWindow, Stride,
    StrideConfig, ValuePredictor, Vtage, VtageConfig,
};
use vpsim_rng::SmallRng;

const CASES: usize = 96;

fn rng(test: u64) -> SmallRng {
    SmallRng::seed_from_u64(0xbed_0000 ^ test)
}

fn ctx(pc: u64) -> LoadContext {
    LoadContext {
        pc,
        addr: pc ^ 0xaaaa,
        pid: 0,
    }
}

#[test]
fn lvp_threshold_respected() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let threshold = rng.gen_range(1u32..8);
        let value = rng.next_u64();
        let pc = rng.gen_range(0u64..4096);
        let mut vp = Lvp::new(LvpConfig {
            confidence_threshold: threshold,
            ..LvpConfig::default()
        });
        let c = ctx(pc * 4);
        for i in 0..threshold {
            assert!(
                vp.lookup(&c).is_none(),
                "predicted after only {i} trainings"
            );
            vp.train(&c, value, None);
        }
        assert_eq!(vp.lookup(&c).map(|p| p.value), Some(value));
    }
}

#[test]
fn lvp_predicts_last_value() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let values = rng.vec_of(n, SmallRng::next_u64);
        let mut vp = Lvp::new(LvpConfig {
            confidence_threshold: 1,
            ..LvpConfig::default()
        });
        let c = ctx(0x40);
        for v in &values {
            vp.train(&c, *v, None);
        }
        // threshold 1 + same value trains means prediction only after the
        // last value has been seen; retrain it once to confirm.
        vp.train(&c, *values.last().unwrap(), None);
        assert_eq!(vp.lookup(&c).unwrap().value, *values.last().unwrap());
    }
}

#[test]
fn lvp_capacity_bounded() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let capacity = rng.gen_range(1usize..32);
        let n = rng.gen_range(1usize..200);
        let mut vp = Lvp::new(LvpConfig {
            capacity,
            ..LvpConfig::default()
        });
        for _ in 0..n {
            let pc = rng.gen_range(0u64..4096);
            vp.train(&ctx(pc * 4), pc, None);
            assert!(vp.occupancy() <= capacity);
        }
    }
}

#[test]
fn lvp_single_access_invalidation() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let value = rng.next_u64();
        let other = rng.next_u64();
        if value == other {
            continue;
        }
        let pc = rng.gen_range(0u64..1024);
        let mut vp = Lvp::new(LvpConfig::default());
        let c = ctx(pc * 4);
        for _ in 0..5 {
            vp.train(&c, value, None);
        }
        assert!(vp.lookup(&c).is_some());
        vp.train(&c, other, None);
        assert!(vp.lookup(&c).is_none());
    }
}

#[test]
fn always_predict_total() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..100);
        let mut vp = AlwaysPredict::new(
            Lvp::new(LvpConfig::default()),
            AlwaysMode::History,
            IndexConfig::default(),
        );
        for _ in 0..n {
            let pc = rng.gen_range(0u64..4096);
            assert!(vp.lookup(&ctx(pc * 4)).is_some());
            vp.train(&ctx(pc * 4), pc, None);
        }
    }
}

#[test]
fn random_window_bounded() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let window = rng.gen_range(2u64..32);
        let value = rng.gen_range(1000u64..2000);
        let seed = rng.next_u64();
        let mut inner = Lvp::new(LvpConfig::default());
        let c = ctx(0x40);
        for _ in 0..4 {
            inner.train(&c, value, None);
        }
        let mut vp = RandomWindow::new(inner, window, seed);
        let lo = value - (window - 1) / 2;
        let hi = lo + window - 1;
        for _ in 0..64 {
            let v = vp.lookup(&c).unwrap().value;
            assert!((lo..=hi).contains(&v), "{v} outside [{lo}, {hi}]");
        }
    }
}

#[test]
fn stride_equals_lvp_on_constants() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let value = rng.next_u64();
        let n = rng.gen_range(3usize..10);
        let mut lvp = Lvp::new(LvpConfig::default());
        let mut stride = Stride::new(StrideConfig::default());
        let c = ctx(0x40);
        for _ in 0..n {
            lvp.train(&c, value, None);
            stride.train(&c, value, None);
        }
        assert_eq!(
            lvp.lookup(&c).map(|p| p.value),
            stride.lookup(&c).map(|p| p.value)
        );
    }
}

#[test]
fn vtage_deterministic() {
    let mut rng = rng(8);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..100);
        let stream = rng.vec_of(n, |r| (r.gen_range(0u64..64), r.gen_range(0u64..8)));
        let mut a = Vtage::new(VtageConfig::default());
        let mut b = Vtage::new(VtageConfig::default());
        for (pc, v) in stream {
            let c = ctx(pc * 4);
            let pa = a.lookup(&c).map(|p| p.value);
            assert_eq!(pa, b.lookup(&c).map(|p| p.value));
            a.train(&c, v, pa);
            b.train(&c, v, pa);
        }
    }
}

#[test]
fn stats_invariants() {
    let mut rng = rng(9);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let mut vp = Lvp::new(LvpConfig::default());
        for _ in 0..n {
            let c = ctx(rng.gen_range(0u64..16) * 4);
            let v = rng.gen_range(0u64..4);
            let p = vp.lookup(&c);
            vp.train(&c, v, p.map(|p| p.value));
        }
        let s = vp.stats();
        assert_eq!(s.lookups, s.predictions + s.no_predictions);
        assert!(s.correct + s.incorrect <= s.predictions);
        assert!(s.coverage() >= 0.0 && s.coverage() <= 1.0);
        assert!(s.accuracy() >= 0.0 && s.accuracy() <= 1.0);
    }
}
