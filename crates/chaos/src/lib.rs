//! # vpsim-chaos
//!
//! The deterministic fault/noise-injection plane for the simulator.
//!
//! The paper's evaluation runs on a quiet machine; real predictor
//! attacks contend with co-tenants, context switches and DRAM traffic.
//! This crate models that activity as *injectors* threaded through the
//! memory hierarchy, the pipeline and the value predictor:
//!
//! | injector | domain | real-world analogue |
//! |---|---|---|
//! | extra DRAM/L2 latency jitter | mem | bank conflicts, refresh, bus contention |
//! | random line evictions | mem | prefetcher / co-tenant cache pressure |
//! | TLB shootdowns | mem | IPI-driven remote invalidations |
//! | spurious squashes | pipeline | context switches, interrupts |
//! | predictor entry decay | predictor | co-tenant VPS contention |
//! | predictor value bit-flips | predictor | aliasing/partial-tag corruption |
//! | dropped training updates | predictor | entry eviction between train and use |
//!
//! **Determinism invariants** (held by every engine here):
//!
//! 1. Each engine owns a private [`SmallRng`] stream seeded from
//!    `splitmix64(seed ^ domain_tag)`, so the mem, pipeline and
//!    predictor streams are mutually independent yet pure functions of
//!    the one machine seed — same seed ⇒ bit-identical chaos.
//! 2. A zero-probability / zero-magnitude injector consumes **no** RNG
//!    words, so a level-0 ([`ChaosConfig::off`]) machine is *bit-identical*
//!    to a machine with no chaos plane installed at all.
//! 3. Draws happen at architecturally meaningful points (demand access,
//!    instruction commit, predictor lookup/train) that occur identically
//!    under the event-driven scheduler's cycle skipping.

#![forbid(unsafe_code)]

use vpsim_rng::{splitmix64, SmallRng};

/// Domain-separation tags mixed into the master seed so the three
/// engine streams are independent.
const TAG_MEM: u64 = 0x6d65_6d5f_c4a0_5001;
const TAG_PIPE: u64 = 0x7069_7065_c4a0_5002;
const TAG_PRED: u64 = 0x7072_6564_c4a0_5003;

fn derive(seed: u64, tag: u64) -> u64 {
    let mut s = seed ^ tag;
    splitmix64(&mut s)
}

/// Memory-side injector intensities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemChaosConfig {
    /// Extra uniform jitter (cycles, `0..=n`) added to every DRAM access
    /// on top of the configured `dram_jitter`. `0` disables.
    pub extra_dram_jitter: u64,
    /// Extra uniform jitter (cycles, `0..=n`) added to every L2 hit.
    /// `0` disables.
    pub extra_l2_jitter: u64,
    /// Probability that a demand access is preceded by a random-line
    /// eviction in both cache levels (co-tenant / prefetcher pressure).
    pub evict_prob: f64,
    /// Probability that a demand access is preceded by a full TLB
    /// shootdown.
    pub tlb_shootdown_prob: f64,
}

impl MemChaosConfig {
    /// The all-off configuration.
    #[must_use]
    pub fn off() -> MemChaosConfig {
        MemChaosConfig {
            extra_dram_jitter: 0,
            extra_l2_jitter: 0,
            evict_prob: 0.0,
            tlb_shootdown_prob: 0.0,
        }
    }

    /// Whether every injector is disabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.extra_dram_jitter == 0
            && self.extra_l2_jitter == 0
            && self.evict_prob == 0.0
            && self.tlb_shootdown_prob == 0.0
    }
}

/// Pipeline-side injector intensities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeChaosConfig {
    /// Probability, per committed instruction, of a spurious squash of
    /// every in-flight younger instruction (context-switch model).
    pub squash_prob: f64,
    /// Extra front-end stall cycles added on a spurious squash, on top
    /// of the core's squash penalty (the descheduled window).
    pub switch_penalty: u64,
}

impl PipeChaosConfig {
    /// The all-off configuration.
    #[must_use]
    pub fn off() -> PipeChaosConfig {
        PipeChaosConfig {
            squash_prob: 0.0,
            switch_penalty: 0,
        }
    }

    /// Whether the injector is disabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.squash_prob == 0.0
    }
}

/// Predictor-side injector intensities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredChaosConfig {
    /// Probability that a lookup's prediction is suppressed (the entry
    /// decayed below confidence / was evicted by a co-tenant).
    pub decay_prob: f64,
    /// Probability that a surviving prediction has one random value bit
    /// flipped.
    pub flip_prob: f64,
    /// Probability that a training update is dropped (the entry was
    /// evicted between the miss and the update).
    pub drop_train_prob: f64,
}

impl PredChaosConfig {
    /// The all-off configuration.
    #[must_use]
    pub fn off() -> PredChaosConfig {
        PredChaosConfig {
            decay_prob: 0.0,
            flip_prob: 0.0,
            drop_train_prob: 0.0,
        }
    }

    /// Whether every injector is disabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.decay_prob == 0.0 && self.flip_prob == 0.0 && self.drop_train_prob == 0.0
    }
}

/// The full noise model: one sub-config per domain.
///
/// `Debug` output feeds the harness campaign fingerprint, so two
/// campaigns differing only in chaos intensity resume into different
/// manifests — exactly as required.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Memory-side injectors.
    pub mem: MemChaosConfig,
    /// Pipeline-side injectors.
    pub pipeline: PipeChaosConfig,
    /// Predictor-side injectors.
    pub predictor: PredChaosConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::off()
    }
}

impl ChaosConfig {
    /// No chaos: a machine with this config is bit-identical to one
    /// with no chaos plane at all.
    #[must_use]
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            mem: MemChaosConfig::off(),
            pipeline: PipeChaosConfig::off(),
            predictor: PredChaosConfig::off(),
        }
    }

    /// Whether every injector in every domain is disabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.mem.is_off() && self.pipeline.is_off() && self.predictor.is_off()
    }

    /// The number of calibrated noise levels (`0..NUM_LEVELS`).
    pub const NUM_LEVELS: u8 = 5;

    /// A calibrated noise level. Level 0 is [`ChaosConfig::off`];
    /// levels 1–4 scale every injector geometrically, from "background
    /// hum" to "hostile co-tenant". Levels above 4 saturate at 4.
    #[must_use]
    pub fn level(level: u8) -> ChaosConfig {
        let l = level.min(Self::NUM_LEVELS - 1);
        if l == 0 {
            return ChaosConfig::off();
        }
        // Geometric scaling (×~2.5 per level) keeps the accuracy-vs-noise
        // curve strictly graded: each level is unambiguously noisier
        // than the one below, while the top level stays short of
        // channel-destroying (coin-flip) noise so receiver quality still
        // matters there.
        let scale = [0.0, 1.0, 2.5, 6.0, 15.0][l as usize];
        let p = |base: f64| (base * scale).min(0.9);
        let j = |base: f64| (base * scale) as u64;
        ChaosConfig {
            mem: MemChaosConfig {
                extra_dram_jitter: j(6.0),
                extra_l2_jitter: j(2.0),
                evict_prob: p(0.004),
                tlb_shootdown_prob: p(0.0008),
            },
            pipeline: PipeChaosConfig {
                squash_prob: p(0.0015),
                switch_penalty: j(24.0),
            },
            predictor: PredChaosConfig {
                decay_prob: p(0.006),
                flip_prob: p(0.0015),
                drop_train_prob: p(0.006),
            },
        }
    }
}

/// Counters of injected events, for the chaos event log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosEvents {
    /// Extra DRAM jitter cycles injected.
    pub dram_jitter_cycles: u64,
    /// Extra L2 jitter cycles injected.
    pub l2_jitter_cycles: u64,
    /// Random line evictions performed (per level pair).
    pub evictions: u64,
    /// TLB shootdowns performed.
    pub tlb_shootdowns: u64,
    /// Spurious squashes injected at commit.
    pub spurious_squashes: u64,
    /// Predictions suppressed by entry decay.
    pub predictions_decayed: u64,
    /// Prediction values bit-flipped.
    pub values_flipped: u64,
    /// Training updates dropped.
    pub trainings_dropped: u64,
}

impl ChaosEvents {
    /// Sum counters from another log into this one.
    pub fn merge(&mut self, other: &ChaosEvents) {
        self.dram_jitter_cycles += other.dram_jitter_cycles;
        self.l2_jitter_cycles += other.l2_jitter_cycles;
        self.evictions += other.evictions;
        self.tlb_shootdowns += other.tlb_shootdowns;
        self.spurious_squashes += other.spurious_squashes;
        self.predictions_decayed += other.predictions_decayed;
        self.values_flipped += other.values_flipped;
        self.trainings_dropped += other.trainings_dropped;
    }

    /// Total injected events (jitter counted per affected access, not
    /// per cycle).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.evictions
            + self.tlb_shootdowns
            + self.spurious_squashes
            + self.predictions_decayed
            + self.values_flipped
            + self.trainings_dropped
    }
}

/// The memory-domain engine: owns the mem chaos stream and counters.
#[derive(Debug, Clone)]
pub struct MemChaos {
    cfg: MemChaosConfig,
    rng: SmallRng,
    events: ChaosEvents,
}

impl MemChaos {
    /// Build the engine on its domain-separated stream.
    #[must_use]
    pub fn new(cfg: MemChaosConfig, seed: u64) -> MemChaos {
        MemChaos {
            cfg,
            rng: SmallRng::seed_from_u64(derive(seed, TAG_MEM)),
            events: ChaosEvents::default(),
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &MemChaosConfig {
        &self.cfg
    }

    /// Injected-event counters so far.
    #[must_use]
    pub fn events(&self) -> &ChaosEvents {
        &self.events
    }

    /// Extra cycles to add to a DRAM access. Draws nothing when the
    /// injector is off (determinism invariant 2).
    pub fn dram_extra(&mut self) -> u64 {
        if self.cfg.extra_dram_jitter == 0 {
            return 0;
        }
        let extra = self.rng.gen_range(0..=self.cfg.extra_dram_jitter);
        self.events.dram_jitter_cycles += extra;
        extra
    }

    /// Extra cycles to add to an L2 hit. Draws nothing when off.
    pub fn l2_extra(&mut self) -> u64 {
        if self.cfg.extra_l2_jitter == 0 {
            return 0;
        }
        let extra = self.rng.gen_range(0..=self.cfg.extra_l2_jitter);
        self.events.l2_jitter_cycles += extra;
        extra
    }

    /// Whether a random-line eviction fires before this demand access.
    /// Draws nothing when off.
    pub fn evict_fires(&mut self) -> bool {
        if self.cfg.evict_prob == 0.0 {
            return false;
        }
        let fires = self.rng.gen_bool(self.cfg.evict_prob);
        if fires {
            self.events.evictions += 1;
        }
        fires
    }

    /// Pick the victim `(set, way)` for an eviction that fired.
    pub fn pick_victim(&mut self, sets: usize, ways: usize) -> (usize, usize) {
        (self.rng.gen_range(0..sets), self.rng.gen_range(0..ways))
    }

    /// Whether a TLB shootdown fires before this demand access. Draws
    /// nothing when off.
    pub fn tlb_shootdown_fires(&mut self) -> bool {
        if self.cfg.tlb_shootdown_prob == 0.0 {
            return false;
        }
        let fires = self.rng.gen_bool(self.cfg.tlb_shootdown_prob);
        if fires {
            self.events.tlb_shootdowns += 1;
        }
        fires
    }
}

/// The pipeline-domain engine: spurious squashes at commit.
#[derive(Debug, Clone)]
pub struct PipeChaos {
    cfg: PipeChaosConfig,
    rng: SmallRng,
    events: ChaosEvents,
}

impl PipeChaos {
    /// Build the engine on its domain-separated stream.
    #[must_use]
    pub fn new(cfg: PipeChaosConfig, seed: u64) -> PipeChaos {
        PipeChaos {
            cfg,
            rng: SmallRng::seed_from_u64(derive(seed, TAG_PIPE)),
            events: ChaosEvents::default(),
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &PipeChaosConfig {
        &self.cfg
    }

    /// Injected-event counters so far.
    #[must_use]
    pub fn events(&self) -> &ChaosEvents {
        &self.events
    }

    /// Extra front-end stall to apply on a spurious squash.
    #[must_use]
    pub fn switch_penalty(&self) -> u64 {
        self.cfg.switch_penalty
    }

    /// Whether a spurious squash fires after this commit. Draws nothing
    /// when off.
    pub fn squash_fires(&mut self) -> bool {
        if self.cfg.squash_prob == 0.0 {
            return false;
        }
        let fires = self.rng.gen_bool(self.cfg.squash_prob);
        if fires {
            self.events.spurious_squashes += 1;
        }
        fires
    }
}

/// The predictor-domain engine: decay, bit-flips and dropped trainings.
#[derive(Debug, Clone)]
pub struct PredChaos {
    cfg: PredChaosConfig,
    rng: SmallRng,
    events: ChaosEvents,
}

impl PredChaos {
    /// Build the engine on its domain-separated stream.
    #[must_use]
    pub fn new(cfg: PredChaosConfig, seed: u64) -> PredChaos {
        PredChaos {
            cfg,
            rng: SmallRng::seed_from_u64(derive(seed, TAG_PRED)),
            events: ChaosEvents::default(),
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &PredChaosConfig {
        &self.cfg
    }

    /// Injected-event counters so far.
    #[must_use]
    pub fn events(&self) -> &ChaosEvents {
        &self.events
    }

    /// Whether this lookup's prediction decays away. Draws nothing when
    /// off.
    pub fn decay_fires(&mut self) -> bool {
        if self.cfg.decay_prob == 0.0 {
            return false;
        }
        let fires = self.rng.gen_bool(self.cfg.decay_prob);
        if fires {
            self.events.predictions_decayed += 1;
        }
        fires
    }

    /// Perturb a surviving predicted value, possibly flipping one random
    /// bit. Draws nothing when off.
    pub fn perturb_value(&mut self, value: u64) -> u64 {
        if self.cfg.flip_prob == 0.0 {
            return value;
        }
        if self.rng.gen_bool(self.cfg.flip_prob) {
            self.events.values_flipped += 1;
            value ^ (1u64 << self.rng.gen_range(0u64..64))
        } else {
            value
        }
    }

    /// Whether this training update is dropped. Draws nothing when off.
    pub fn drop_train_fires(&mut self) -> bool {
        if self.cfg.drop_train_prob == 0.0 {
            return false;
        }
        let fires = self.rng.gen_bool(self.cfg.drop_train_prob);
        if fires {
            self.events.trainings_dropped += 1;
        }
        fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_is_off() {
        assert!(ChaosConfig::level(0).is_off());
        assert_eq!(ChaosConfig::level(0), ChaosConfig::off());
        assert_eq!(ChaosConfig::default(), ChaosConfig::off());
    }

    #[test]
    fn levels_scale_monotonically() {
        for l in 1..ChaosConfig::NUM_LEVELS {
            let lo = ChaosConfig::level(l - 1);
            let hi = ChaosConfig::level(l);
            assert!(hi.mem.evict_prob > lo.mem.evict_prob, "level {l}");
            assert!(hi.mem.extra_dram_jitter > lo.mem.extra_dram_jitter);
            assert!(hi.pipeline.squash_prob > lo.pipeline.squash_prob);
            assert!(hi.predictor.decay_prob > lo.predictor.decay_prob);
            assert!(!hi.is_off());
        }
    }

    #[test]
    fn levels_saturate_beyond_max() {
        assert_eq!(ChaosConfig::level(9), ChaosConfig::level(4));
        assert_eq!(ChaosConfig::level(255), ChaosConfig::level(4));
    }

    #[test]
    fn off_engines_draw_nothing() {
        // Engines with all-off configs must leave their RNG untouched,
        // so a level-0 plane cannot perturb any downstream stream.
        let mut m = MemChaos::new(MemChaosConfig::off(), 7);
        let pristine = m.rng.clone();
        for _ in 0..100 {
            assert_eq!(m.dram_extra(), 0);
            assert_eq!(m.l2_extra(), 0);
            assert!(!m.evict_fires());
            assert!(!m.tlb_shootdown_fires());
        }
        assert_eq!(m.rng, pristine, "off mem engine consumed RNG words");

        let mut p = PipeChaos::new(PipeChaosConfig::off(), 7);
        let pristine = p.rng.clone();
        for _ in 0..100 {
            assert!(!p.squash_fires());
        }
        assert_eq!(p.rng, pristine, "off pipe engine consumed RNG words");

        let mut v = PredChaos::new(PredChaosConfig::off(), 7);
        let pristine = v.rng.clone();
        for _ in 0..100 {
            assert!(!v.decay_fires());
            assert_eq!(v.perturb_value(0xdead), 0xdead);
            assert!(!v.drop_train_fires());
        }
        assert_eq!(v.rng, pristine, "off pred engine consumed RNG words");
        assert_eq!(*v.events(), ChaosEvents::default());
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = ChaosConfig::level(3);
        let mut a = MemChaos::new(cfg.mem, 42);
        let mut b = MemChaos::new(cfg.mem, 42);
        for _ in 0..200 {
            assert_eq!(a.dram_extra(), b.dram_extra());
            assert_eq!(a.evict_fires(), b.evict_fires());
        }
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn domain_streams_are_independent() {
        // The three engines on one seed must not share a stream: their
        // first draws differ (domain tags separate them).
        let seed = 1234;
        let a = derive(seed, TAG_MEM);
        let b = derive(seed, TAG_PIPE);
        let c = derive(seed, TAG_PRED);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn events_fire_at_high_intensity() {
        let cfg = MemChaosConfig {
            extra_dram_jitter: 50,
            extra_l2_jitter: 10,
            evict_prob: 0.5,
            tlb_shootdown_prob: 0.5,
        };
        let mut m = MemChaos::new(cfg, 1);
        for _ in 0..200 {
            m.dram_extra();
            if m.evict_fires() {
                let (s, w) = m.pick_victim(64, 8);
                assert!(s < 64 && w < 8);
            }
            m.tlb_shootdown_fires();
        }
        let e = m.events();
        assert!(e.dram_jitter_cycles > 0);
        assert!(e.evictions > 0);
        assert!(e.tlb_shootdowns > 0);

        let mut v = PredChaos::new(
            PredChaosConfig {
                decay_prob: 0.5,
                flip_prob: 0.9,
                drop_train_prob: 0.5,
            },
            1,
        );
        let mut flipped = 0;
        for _ in 0..100 {
            v.decay_fires();
            if v.perturb_value(0) != 0 {
                flipped += 1;
            }
            v.drop_train_fires();
        }
        assert!(flipped > 0, "bit flips must fire at p=0.9");
        assert!(v.events().predictions_decayed > 0);
        assert!(v.events().trainings_dropped > 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ChaosEvents {
            evictions: 2,
            spurious_squashes: 1,
            ..ChaosEvents::default()
        };
        let b = ChaosEvents {
            evictions: 3,
            values_flipped: 4,
            ..ChaosEvents::default()
        };
        a.merge(&b);
        assert_eq!(a.evictions, 5);
        assert_eq!(a.spurious_squashes, 1);
        assert_eq!(a.values_flipped, 4);
        assert_eq!(a.total(), 10);
    }
}
