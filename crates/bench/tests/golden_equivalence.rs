//! Golden-trace equivalence suite for the pipeline executor.
//!
//! Every fixture in `tests/golden/` was recorded from the pre-event-driven
//! (tick-by-tick) executor. The tests re-run the same deterministic
//! workloads — every attack-zoo trial variant, defense and front-end
//! configurations, the performance kernels and the end-to-end RSA key
//! leak — and assert the executor still produces **bit-identical**
//! [`RunResult`]s: cycles, final registers, rdtsc observations, run
//! statistics and the full commit trace.
//!
//! To re-record (only after an *intentional* semantic change):
//!
//! ```sh
//! GOLDEN_RECORD=1 cargo test -p vpsim-bench --test golden_equivalence
//! ```
//!
//! [`RunResult`]: vpsim_pipeline::RunResult

use std::fmt::Write as _;
use std::path::PathBuf;

use vpsec::attacks::{build_trial, AttackCategory, AttackSetup, Trial};
use vpsec::chaos::ChaosConfig;
use vpsec::experiment::Channel;
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};
use vpsim_isa::Reg;
use vpsim_mem::MemoryConfig;
use vpsim_pipeline::{CoreConfig, Machine, RunResult};
use vpsim_predictor::{
    Fcm, FcmConfig, IndexConfig, IndexKind, Lvp, LvpConfig, NoPredictor, Oracle, Stride,
    StrideConfig, ValuePredictor, Vtage, VtageConfig,
};

// ---------------------------------------------------------------------
// Canonical serialization + digest.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// Render a run result into the canonical text form the digests (and the
/// full-dump fixtures) are computed over. Deliberately lists fields
/// explicitly — adding *new* diagnostic fields to `RunResult` must not
/// invalidate recorded fixtures.
fn canonical(r: &RunResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "cycles: {}", r.cycles);
    let _ = write!(s, "regs:");
    for reg in Reg::all() {
        let _ = write!(s, " {}", r.regs.read(reg));
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "rdtsc: {:?}", r.rdtsc_values);
    let _ = writeln!(s, "stats: {:?}", r.stats);
    let _ = writeln!(s, "trace[{}]:", r.trace.len());
    for ev in &r.trace {
        let _ = writeln!(
            s,
            "  @{} pc{} {:?} -> {:?}",
            ev.cycle, ev.pc.0, ev.inst, ev.result
        );
    }
    s
}

// ---------------------------------------------------------------------
// Workload drivers. Each returns (digest, runs, total cycles).
// ---------------------------------------------------------------------

struct CellDigest {
    name: String,
    digest: u64,
    runs: u64,
    cycles: u64,
}

fn golden_core() -> CoreConfig {
    CoreConfig {
        record_commit_trace: true,
        ..CoreConfig::default()
    }
}

fn predictor_for(kind: &str, setup: &AttackSetup) -> Box<dyn ValuePredictor> {
    let lvp = LvpConfig {
        confidence_threshold: setup.confidence,
        ..LvpConfig::default()
    };
    let vtage = VtageConfig {
        confidence_threshold: setup.confidence,
        ..VtageConfig::default()
    };
    match kind {
        "novp" => Box::new(NoPredictor::new()),
        "lvp" => Box::new(Lvp::new(lvp)),
        "ovtage" => Box::new(Oracle::new(Vtage::new(vtage), [setup.target_pc()])),
        other => unreachable!("unknown predictor {other}"),
    }
}

/// Run one attack trial on a fresh machine, digesting every step run.
/// `chaos` optionally installs the fault/noise plane — passing
/// `ChaosConfig::level(0)` must leave every digest untouched.
fn run_attack_cell(
    name: &str,
    trial: &Trial,
    core: CoreConfig,
    kind: &str,
    chaos: Option<&ChaosConfig>,
) -> CellDigest {
    let setup = AttackSetup::default();
    let seed = fnv1a(FNV_OFFSET, name.as_bytes());
    let mut machine = Machine::new(
        core,
        MemoryConfig::default(),
        predictor_for(kind, &setup),
        seed,
    );
    if let Some(c) = chaos {
        machine.set_chaos(c, seed ^ 0xc4a0_5eed_0bad_f00d);
    }
    for (addr, value) in &trial.memory_init {
        machine.mem_mut().store_value(*addr, *value);
    }
    let mut digest = FNV_OFFSET;
    let mut runs = 0u64;
    let mut cycles = 0u64;
    for step in &trial.steps {
        for _ in 0..step.repeat {
            let r = machine
                .run(step.party.pid(), &step.program)
                .unwrap_or_else(|e| panic!("{name}: step `{}` failed: {e}", step.label));
            digest = fnv1a(digest, canonical(&r).as_bytes());
            runs += 1;
            cycles += r.cycles;
        }
    }
    CellDigest {
        name: name.to_owned(),
        digest,
        runs,
        cycles,
    }
}

/// Every attack-zoo cell: 6 categories x 2 channels x mapped/unmapped x
/// 3 predictors, plus D-type-defended and stall-front-end variants for
/// the cells that exercise those paths.
fn attack_cells() -> Vec<CellDigest> {
    attack_cells_with(None)
}

fn attack_cells_with(chaos: Option<&ChaosConfig>) -> Vec<CellDigest> {
    let setup = AttackSetup::default();
    let mut out = Vec::new();
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            for mapped in [true, false] {
                let Some(trial) = build_trial(cat, channel, mapped, &setup) else {
                    continue;
                };
                for kind in ["novp", "lvp", "ovtage"] {
                    let name = format!(
                        "{cat:?}/{channel:?}/{}/{kind}",
                        if mapped { "mapped" } else { "unmapped" }
                    );
                    out.push(run_attack_cell(&name, &trial, golden_core(), kind, chaos));
                }
            }
        }
    }
    // D-type defense: deferred fills + release/discard at commit/squash.
    for (cat, channel) in [
        (AttackCategory::TrainTest, Channel::Persistent),
        (AttackCategory::TestHit, Channel::Persistent),
    ] {
        let trial = build_trial(cat, channel, true, &setup).expect("supported");
        let name = format!("{cat:?}/{channel:?}/mapped/lvp/dtype");
        out.push(run_attack_cell(
            &name,
            &trial,
            golden_core().with_delayed_side_effects(),
            "lvp",
            chaos,
        ));
    }
    // Stall-mode front-end (no branch prediction): fetch waits on
    // unresolved branches, the complete phase redirects fetch.
    {
        let trial = build_trial(
            AttackCategory::TrainTest,
            Channel::TimingWindow,
            true,
            &setup,
        )
        .expect("supported");
        let core = CoreConfig {
            branch_prediction: false,
            ..golden_core()
        };
        out.push(run_attack_cell(
            "TrainTest/tw/mapped/lvp/stall",
            &trial,
            core,
            "lvp",
            chaos,
        ));
    }
    out
}

/// The performance kernels under data-address-indexed predictors: long
/// loops, branch mispredictions on loop exit, store/flush/fence traffic.
fn kernel_cells() -> Vec<CellDigest> {
    use vpsim_bench::workloads::{constant_table, pointer_chase, random_values, Workload};

    fn kernel_predictor(kind: &str) -> Box<dyn ValuePredictor> {
        let index = IndexConfig {
            kind: IndexKind::DataAddress,
            ..IndexConfig::default()
        };
        match kind {
            "novp" => Box::new(NoPredictor::new()),
            "lvp" => Box::new(Lvp::new(LvpConfig {
                index,
                capacity: 8192,
                ..LvpConfig::default()
            })),
            "stride" => Box::new(Stride::new(StrideConfig {
                index,
                capacity: 8192,
                ..StrideConfig::default()
            })),
            "vtage" => Box::new(Vtage::new(VtageConfig {
                index,
                log2_entries: 13,
                ..VtageConfig::default()
            })),
            "fcm" => Box::new(Fcm::new(FcmConfig {
                index,
                l1_capacity: 8192,
                l2_capacity: 16384,
                ..FcmConfig::default()
            })),
            other => unreachable!("unknown predictor {other}"),
        }
    }

    fn run_kernel(w: &Workload, kind: &str) -> CellDigest {
        let mut m = Machine::new(
            golden_core(),
            MemoryConfig::deterministic(),
            kernel_predictor(kind),
            0,
        );
        for (a, v) in &w.memory {
            m.mem_mut().store_value(*a, *v);
        }
        let r = m.run(0, &w.program).expect("kernel halts");
        CellDigest {
            name: format!("kernel/{}/{kind}", w.name),
            digest: fnv1a(FNV_OFFSET, canonical(&r).as_bytes()),
            runs: 1,
            cycles: r.cycles,
        }
    }

    let mut out = Vec::new();
    for w in [
        pointer_chase(128, 2),
        constant_table(64, 2),
        random_values(64),
    ] {
        for kind in ["novp", "lvp", "stride", "vtage", "fcm"] {
            out.push(run_kernel(&w, kind));
        }
    }
    out
}

/// The end-to-end RSA exponent leak (tests/rsa_end_to_end.rs shapes).
fn rsa_cells() -> Vec<CellDigest> {
    let mut out = Vec::new();
    for (label, exp, seed) in [
        ("rsa/alternating", Mpi::from_u64(0b1010_1010), 0x5eed),
        ("rsa/irregular", Mpi::from_hex("bad5eed"), 0x5eee),
    ] {
        let cfg = LeakConfig {
            seed,
            calibration_runs: 4,
            ..LeakConfig::default()
        };
        let r = leak_exponent(&exp, &cfg);
        let mut s = String::new();
        let _ = writeln!(s, "true_bits: {:?}", r.true_bits);
        let _ = writeln!(s, "recovered: {:?}", r.recovered_bits);
        let obs: Vec<u64> = r.observations.iter().map(|o| o.to_bits()).collect();
        let _ = writeln!(s, "observations: {obs:?}");
        let _ = writeln!(s, "threshold: {}", r.threshold.to_bits());
        let _ = writeln!(s, "total_cycles: {}", r.total_cycles);
        out.push(CellDigest {
            name: label.to_owned(),
            digest: fnv1a(FNV_OFFSET, s.as_bytes()),
            runs: r.observations.len() as u64,
            cycles: r.total_cycles,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Fixture I/O.
// ---------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn recording() -> bool {
    std::env::var_os("GOLDEN_RECORD").is_some_and(|v| v == "1")
}

fn render_digests(cells: &[CellDigest]) -> String {
    let mut s = String::new();
    for c in cells {
        let _ = writeln!(
            s,
            "{}\t{:#018x}\truns={}\tcycles={}",
            c.name, c.digest, c.runs, c.cycles
        );
    }
    s
}

fn check_or_record(fixture: &str, actual: &str) {
    let path = golden_dir().join(fixture);
    if recording() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write fixture");
        eprintln!("recorded {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             record with GOLDEN_RECORD=1 cargo test -p vpsim-bench --test golden_equivalence",
            path.display()
        )
    });
    if expected != actual {
        let mismatches: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .filter(|(e, a)| e != a)
            .take(8)
            .map(|(e, a)| format!("  expected: {e}\n  actual:   {a}"))
            .collect();
        panic!(
            "{fixture}: executor output diverged from the recorded golden \
             trace ({} line(s) differ; first mismatches:)\n{}\n\
             (only re-record after an intentional semantic change)",
            expected
                .lines()
                .zip(actual.lines())
                .filter(|(e, a)| e != a)
                .count()
                + expected.lines().count().abs_diff(actual.lines().count()),
            mismatches.join("\n")
        );
    }
}

// ---------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------

#[test]
fn attack_zoo_traces_are_bit_identical() {
    check_or_record("attack_zoo.tsv", &render_digests(&attack_cells()));
}

/// The level-0 determinism contract of the fault/noise plane, checked
/// against the *committed* fixtures: installing `ChaosConfig::level(0)`
/// through the public `Machine::set_chaos` API must reproduce every
/// attack-zoo digest bit for bit — a zeroed plane consumes no RNG words
/// and perturbs nothing.
#[test]
fn chaos_level_zero_matches_golden_fixtures() {
    if recording() {
        return; // `attack_zoo_traces_are_bit_identical` records the fixture.
    }
    check_or_record(
        "attack_zoo.tsv",
        &render_digests(&attack_cells_with(Some(&ChaosConfig::level(0)))),
    );
}

#[test]
fn kernel_traces_are_bit_identical() {
    check_or_record("kernels.tsv", &render_digests(&kernel_cells()));
}

#[test]
fn rsa_leak_is_bit_identical() {
    check_or_record("rsa.tsv", &render_digests(&rsa_cells()));
}

/// A complete human-readable commit trace for one small predicted-load
/// workload — when a digest diverges, this fixture shows *where*.
#[test]
fn full_trace_fixture_matches() {
    use vpsim_bench::workloads::pointer_chase;
    let w = pointer_chase(32, 1);
    let index = IndexConfig {
        kind: IndexKind::DataAddress,
        ..IndexConfig::default()
    };
    let mut m = Machine::new(
        golden_core(),
        MemoryConfig::deterministic(),
        Box::new(Lvp::new(LvpConfig {
            index,
            capacity: 8192,
            ..LvpConfig::default()
        })),
        0,
    );
    for (a, v) in &w.memory {
        m.mem_mut().store_value(*a, *v);
    }
    // Two passes: the second predicts from the first's training.
    let first = m.run(0, &w.program).expect("halts");
    let second = m.run(0, &w.program).expect("halts");
    let dump = format!(
        "== run 1 (cold) ==\n{}== run 2 (trained) ==\n{}",
        canonical(&first),
        canonical(&second)
    );
    check_or_record("full_pointer_chase.txt", &dump);
}

/// The level-0 *event trace* of one attack-zoo cell, pinned byte for
/// byte: the Train+Test/timing-window/LVP mapped arm of trial 0 as
/// emitted by `repro --trace`. Any change to event ordering, cycle
/// stamps, or the JSONL shape shows up here as a readable diff.
#[test]
fn trace_dump_level0_matches_golden_fixture() {
    let dump = vpsim_bench::trace_dump::run(1);
    let lines: Vec<&str> = dump.jsonl.lines().collect();
    let is_header = |l: &&str| l.starts_with("{\"type\":\"trace_header\"");
    let first = lines.iter().position(is_header).expect("has a header");
    assert_eq!(first, 0, "dump starts with a header line");
    let second = lines[1..]
        .iter()
        .position(is_header)
        .map_or(lines.len(), |i| i + 1);
    let mut arm = lines[..second].join("\n");
    arm.push('\n');
    assert!(arm.contains("\"cell\":\"train_test/timing_window/lvp\""));
    assert!(arm.contains("\"arm\":\"mapped\""));
    check_or_record("trace_train_test_lvp.jsonl", &arm);
}
