//! Hand-rolled fuzz suite for the user-input surfaces: malformed
//! configurations and malformed programs must come back as typed `Err`s
//! — never a panic. The generator is `vpsim-rng`'s `SmallRng` with fixed
//! seeds, so every "random" case is reproducible; a failure message
//! names the iteration that crashed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vpsec::experiment::{PairOutcome, TrialOutcome};
use vpsim_harness::JobRecord;
use vpsim_isa::{AluOp, BranchCond, ProgramBuilder, Reg};
use vpsim_mem::{CacheGeometry, MemoryConfig, ReplacementKind};
use vpsim_pipeline::CoreConfig;
use vpsim_rng::SmallRng;

const ITERATIONS: usize = 400;

/// Run `f`, converting a panic into a test failure naming the case.
fn must_not_panic<T>(case: &str, f: impl FnOnce() -> T) -> T {
    catch_unwind(AssertUnwindSafe(f))
        .unwrap_or_else(|_| panic!("{case}: panicked on malformed input instead of returning Err"))
}

fn fuzz_geometry(rng: &mut SmallRng) -> CacheGeometry {
    CacheGeometry {
        sets: *rng.choose(&[0, 1, 3, 63, 64, 65, 512, usize::MAX / 2]),
        ways: rng.gen_range(0..4usize),
        line_bytes: *rng.choose(&[0, 1, 4, 7, 8, 64, 100, 1 << 62]),
        hit_latency: rng.gen_range(0..32u64),
        replacement: *rng.choose(&[
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Random,
        ]),
    }
}

#[test]
fn malformed_memory_configs_error_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xf022_0001);
    let mut rejected = 0usize;
    for i in 0..ITERATIONS {
        let cfg = MemoryConfig {
            l1: fuzz_geometry(&mut rng),
            l2: fuzz_geometry(&mut rng),
            dram_latency: rng.gen_range(0..400u64),
            dram_jitter: rng.gen_range(0..64u64),
            page_bytes: *rng.choose(&[0, 1, 9, 4096, 1000, 1 << 40]),
            tlb_entries: rng.gen_range(0..3usize),
            tlb_hit_latency: rng.gen_range(0..4u64),
            page_walk_latency: rng.gen_range(0..64u64),
            prefetch: MemoryConfig::default().prefetch,
        };
        let case = format!("mem config #{i} ({cfg:?})");
        let result = must_not_panic(&case, || cfg.validate());
        if let Err(e) = result {
            rejected += 1;
            let msg = e.to_string();
            assert!(
                !msg.is_empty() && !msg.contains('\n'),
                "{case}: error must render as one clean line, got {msg:?}"
            );
        }
    }
    assert!(
        rejected > ITERATIONS / 2,
        "the generator should produce mostly-invalid configs (rejected {rejected})"
    );
}

#[test]
fn malformed_core_configs_error_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xf022_0002);
    let mut rejected = 0usize;
    for i in 0..ITERATIONS {
        let cfg = CoreConfig {
            fetch_width: rng.gen_range(0..3usize),
            issue_width: rng.gen_range(0..3usize),
            commit_width: rng.gen_range(0..3usize),
            rob_entries: rng.gen_range(0..5usize),
            alu_latency: rng.gen_range(0..4u64),
            mul_latency: rng.gen_range(0..8u64),
            squash_penalty: rng.gen_range(0..16u64),
            branch_prediction: rng.gen_bool(0.5),
            forward_latency: rng.gen_range(0..4u64),
            max_cycles: *rng.choose(&[0, 1, 1000, 50_000_000]),
            delay_side_effects: rng.gen_bool(0.5),
            record_commit_trace: rng.gen_bool(0.5),
        };
        let case = format!("core config #{i} ({cfg:?})");
        let result = must_not_panic(&case, || cfg.validate());
        if let Err(e) = result {
            rejected += 1;
            let msg = e.to_string();
            assert!(
                !msg.is_empty() && !msg.contains('\n'),
                "{case}: error must render as one clean line, got {msg:?}"
            );
        }
    }
    assert!(rejected > ITERATIONS / 2, "rejected only {rejected}");
}

#[test]
fn malformed_programs_error_never_panic() {
    let regs = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6];
    let labels = ["a", "b", "ghost", "a"]; // "a" twice → duplicate chances
    let mut rng = SmallRng::seed_from_u64(0xf022_0003);
    let mut rejected = 0usize;
    for i in 0..ITERATIONS {
        let mut b = ProgramBuilder::new();
        let mut label_failed = false;
        for _ in 0..rng.gen_range(0..12usize) {
            match rng.gen_range(0..8u32) {
                0 => {
                    b.li(*rng.choose(&regs), rng.next_u64());
                }
                1 => {
                    b.load(*rng.choose(&regs), *rng.choose(&regs), 0);
                }
                2 => {
                    b.alu(
                        AluOp::Add,
                        *rng.choose(&regs),
                        *rng.choose(&regs),
                        *rng.choose(&regs),
                    );
                }
                3 => {
                    // Possibly-duplicate label definition: an Err here is
                    // valid rejection, not a crash.
                    let label = *rng.choose(&labels);
                    if b.label(label).is_err() {
                        label_failed = true;
                    }
                }
                4 => {
                    // Branch to a label that may never be defined.
                    let label = *rng.choose(&labels);
                    b.branch(
                        BranchCond::Eq,
                        *rng.choose(&regs),
                        *rng.choose(&regs),
                        label,
                    );
                }
                5 => {
                    let label = *rng.choose(&labels);
                    b.jump(label);
                }
                6 => {
                    b.nops(rng.gen_range(0..3usize));
                }
                _ => {
                    // Sometimes a halt mid-program; often no halt at all.
                    if rng.gen_bool(0.3) {
                        b.halt();
                    }
                }
            }
        }
        let case = format!("program #{i}");
        let result = must_not_panic(&case, || b.build());
        if label_failed || result.is_err() {
            rejected += 1;
        }
        if let Err(e) = result {
            let msg = e.to_string();
            assert!(
                !msg.is_empty() && !msg.contains('\n'),
                "{case}: error must render as one clean line, got {msg:?}"
            );
        }
    }
    assert!(
        rejected > ITERATIONS / 4,
        "the generator should hit undefined labels / missing halts often (rejected {rejected})"
    );
}

/// A manifest record with fully random contents — including `f64` bit
/// patterns that decode to NaN, infinities and subnormals, which the
/// hex encoding must carry bit-exactly.
fn fuzz_record(rng: &mut SmallRng) -> JobRecord {
    let observed = |rng: &mut SmallRng| match rng.gen_range(0..4u32) {
        0 => f64::from_bits(rng.next_u64()),
        1 => f64::NAN,
        2 => f64::INFINITY,
        _ => rng.gen_f64() * 1e6,
    };
    let sched = |rng: &mut SmallRng| vpsim_pipeline::SchedStats {
        ticks: rng.next_u64(),
        skipped_cycles: rng.next_u64(),
        completion_events: rng.next_u64(),
        wakeup_broadcasts: rng.next_u64(),
        verify_events: rng.next_u64(),
        issue_slots: rng.next_u64(),
        dispatched: rng.next_u64(),
    };
    JobRecord {
        cell: rng.gen_range(0..1_000_000usize),
        trial: rng.gen_range(0..1_000_000usize),
        pair: PairOutcome {
            mapped: TrialOutcome {
                observed: observed(rng),
                total_cycles: rng.next_u64(),
                sched: sched(rng),
            },
            unmapped: TrialOutcome {
                observed: observed(rng),
                total_cycles: rng.next_u64(),
                sched: sched(rng),
            },
        },
        wall_nanos: rng.next_u64(),
        attempts: rng.gen_range(1..100u64) as u32,
    }
}

#[test]
fn job_record_lines_round_trip_bit_exactly() {
    let mut rng = SmallRng::seed_from_u64(0xf022_0004);
    for i in 0..ITERATIONS {
        let rec = fuzz_record(&mut rng);
        let line = rec.to_line();
        let case = format!("record #{i} ({line})");
        let back = must_not_panic(&case, || JobRecord::parse(&line))
            .unwrap_or_else(|| panic!("{case}: writer output must always parse"));
        // Compare re-serialized lines: string equality is bit-exact for
        // the f64 payloads (NaN != NaN under float comparison).
        assert_eq!(back.to_line(), line, "{case}: lossy round-trip");
    }
}

#[test]
fn truncated_job_record_lines_are_rejected_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xf022_0005);
    for i in 0..ITERATIONS {
        let line = fuzz_record(&mut rng).to_line();
        // Every strict prefix models a torn tail from a killed writer;
        // all of them must be cleanly rejected (the line is ASCII, so
        // any byte offset is a char boundary).
        let cut = rng.gen_range(0..line.len());
        let torn = &line[..cut];
        let case = format!("torn line #{i} (cut at {cut}: {torn:?})");
        let parsed = must_not_panic(&case, || JobRecord::parse(torn));
        assert!(
            parsed.is_none(),
            "{case}: a torn line must never be accepted"
        );
    }
}

#[test]
fn adversarial_job_record_lines_never_panic_or_false_accept() {
    let mut rng = SmallRng::seed_from_u64(0xf022_0006);
    let keys = [
        "cell", "trial", "m_obs", "m_cyc", "u_obs", "u_cyc", "wall_ns", "attempts",
    ];
    for i in 0..ITERATIONS {
        let line = fuzz_record(&mut rng).to_line();
        let (mutated, must_reject) = match rng.gen_range(0..5u32) {
            // Bad hex in an observation field.
            0 => (line.replacen("\"m_obs\":\"", "\"m_obs\":\"zz", 1), true),
            // A numeric field replaced by garbage.
            1 => {
                let key = *rng.choose(&keys[..2]);
                (
                    line.replacen(&format!("\"{key}\":"), &format!("\"{key}\":x"), 1),
                    true,
                )
            }
            // A field removed entirely.
            2 => {
                let key = *rng.choose(&keys);
                (line.replacen(&format!("\"{key}\""), "\"gone\"", 1), true)
            }
            // Duplicate key prepended: the parser must stay
            // deterministic (first occurrence wins), not crash.
            3 => (
                format!("{{\"cell\":7,{}", line.trim_start_matches('{')),
                false,
            ),
            // Random bytes spliced into the middle.
            _ => {
                let at = rng.gen_range(1..line.len());
                let mut m = String::new();
                m.push_str(&line[..at]);
                m.push_str("\u{1}\"\\");
                m.push_str(&line[at..]);
                (m, false)
            }
        };
        let case = format!("adversarial line #{i} ({mutated:?})");
        let parsed = must_not_panic(&case, || JobRecord::parse(&mutated));
        if must_reject {
            assert!(
                parsed.is_none(),
                "{case}: malformed line must be rejected, got {parsed:?}"
            );
        } else {
            // Accept or reject, but deterministically: parsing twice
            // must agree (compare via the bit-exact line form).
            let again = JobRecord::parse(&mutated);
            assert_eq!(
                parsed.map(JobRecord::to_line),
                again.map(JobRecord::to_line),
                "{case}: parse must be deterministic"
            );
        }
    }
}

#[test]
fn chaos_levels_saturate_never_panic() {
    for l in 0..=u8::MAX {
        let cfg = must_not_panic(&format!("chaos level {l}"), || {
            vpsec::chaos::ChaosConfig::level(l)
        });
        assert_eq!(cfg.is_off(), l == 0, "only level 0 is the off plane");
    }
}
