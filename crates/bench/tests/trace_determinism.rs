//! End-to-end determinism of `repro --trace`: the dumped JSONL must be
//! byte-identical across invocations and across `--jobs` settings. The
//! dump runs the traced zoo sequentially by construction, so any
//! divergence here means a seed, an event-emission site, or the JSONL
//! renderer picked up nondeterministic state.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpsim_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn dump_trace(out: &Path, jobs: &str) -> Vec<u8> {
    let status = repro()
        .args([
            "--trace",
            out.to_str().unwrap(),
            "--trials",
            "2",
            "--jobs",
            jobs,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro --trace failed (jobs={jobs})");
    std::fs::read(out).expect("trace file written")
}

#[test]
fn trace_dump_is_byte_identical_across_runs_and_worker_counts() {
    let dir = tmp_dir("det");
    let a = dump_trace(&dir.join("a.jsonl"), "1");
    let b = dump_trace(&dir.join("b.jsonl"), "1");
    let c = dump_trace(&dir.join("c.jsonl"), "4");
    assert!(!a.is_empty(), "trace dump produced no bytes");
    assert_eq!(a, b, "same invocation twice must dump identical bytes");
    assert_eq!(a, c, "--jobs must not influence the trace dump");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_flag_requires_a_value() {
    let output = repro().arg("--trace").output().expect("spawn repro");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--trace needs a value"), "{stderr}");
}
