//! End-to-end crash-recovery test for the `repro serve` daemon: a real
//! child process is killed with SIGKILL mid-campaign and restarted on
//! the same state directory. The resumed stream must be byte-identical
//! to an uninterrupted reference run of the same spec, with no result
//! coordinate duplicated or lost.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vpsim_serve::client;

const TRIALS: usize = 3_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpsim-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Daemon child that is SIGKILLed on drop so a failing assertion never
/// leaks a live process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(state: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--port",
            "0",
            "--state",
            state.to_str().unwrap(),
            "--runners",
            "1",
            "--jobs",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("addr on listen line")
        .to_owned();
    assert!(
        line.contains("vpsim-serve listening on"),
        "unexpected banner: {line:?}"
    );
    Daemon { child, addr }
}

fn spec_json() -> String {
    format!(
        r#"{{"name":"lazarus","trials":{TRIALS},"seed":901,
            "cells":[{{"category":"train_test","channel":"timing_window","predictor":"lvp"}},
                     {{"category":"test_hit","channel":"persistent","predictor":"lvp"}}]}}"#
    )
}

fn submit(addr: &str) -> u64 {
    let r = client::request(addr, "POST", "/campaigns", Some(&spec_json())).expect("submit");
    assert_eq!(r.status, 201, "submit answered: {}", r.body);
    vpsim_json::field_u64(&r.body, "id").expect("id in acknowledgement")
}

fn collect_stream(addr: &str, id: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let status = client::stream(addr, &format!("/campaigns/{id}/results"), |line| {
        lines.push(line.to_owned());
    })
    .expect("stream");
    assert_eq!(status, 200);
    lines
}

fn shutdown(addr: &str) {
    let _ = client::request(addr, "POST", "/shutdown", None);
}

#[test]
fn sigkill_mid_campaign_then_restart_streams_identical_payloads() {
    // Reference: the same spec, run to completion without interruption.
    let ref_state = temp_dir("ref");
    let reference = {
        let daemon = spawn_daemon(&ref_state);
        let id = submit(&daemon.addr);
        let lines = collect_stream(&daemon.addr, id);
        shutdown(&daemon.addr);
        lines
    };
    assert!(
        reference
            .last()
            .is_some_and(|l| l.contains("\"state\":\"done\"")),
        "reference run must finish"
    );

    // Victim: kill -9 the daemon while the campaign is provably
    // mid-flight (some results durable, some still to come).
    let state = temp_dir("victim");
    let mut daemon = spawn_daemon(&state);
    let id = submit(&daemon.addr);
    let jobs_total = 2 * TRIALS as u64;
    let started = Instant::now();
    loop {
        let r = client::request(&daemon.addr, "GET", &format!("/campaigns/{id}"), None)
            .expect("progress query");
        let done = vpsim_json::field_u64(&r.body, "jobs_done").expect("jobs_done");
        if done >= 1 && done < jobs_total {
            break;
        }
        assert!(
            done < jobs_total,
            "campaign finished before the kill window; raise TRIALS"
        );
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "campaign never started making progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.child.kill().expect("SIGKILL daemon");
    daemon.child.wait().expect("reap daemon");

    // Restart on the same state directory: the daemon must rehydrate
    // the campaign, replay the durable prefix, run the remainder, and
    // stream exactly what the uninterrupted run streamed.
    let daemon = spawn_daemon(&state);
    let resumed = collect_stream(&daemon.addr, id);
    assert_eq!(
        resumed, reference,
        "resumed stream must be byte-identical to the uninterrupted run"
    );

    // No duplicated and no lost result coordinates.
    let mut seen = std::collections::HashSet::new();
    for line in resumed.iter().filter(|l| l.contains("\"type\":\"result\"")) {
        let cell = vpsim_json::field_u64(line, "cell").unwrap();
        let trial = vpsim_json::field_u64(line, "trial").unwrap();
        assert!(seen.insert((cell, trial)), "duplicate result {line:?}");
    }
    assert_eq!(seen.len(), 2 * TRIALS, "every (cell, trial) exactly once");

    shutdown(&daemon.addr);
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&ref_state);
}
