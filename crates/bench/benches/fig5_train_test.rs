//! Figure 5 bench: the Train+Test timing-distribution panels.
//!
//! Prints the reproduced figure once, then times the four panel kernels
//! (timing-window / persistent × no-VP / LVP).

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{evaluate, Channel, PredictorKind};
use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_harness::Exec;

const TRIALS: usize = 20;

fn main() {
    println!("{}", reports::figure_5(TRIALS, &Exec::default()));
    let cfg = reports::config(TRIALS);
    let mut group = BenchGroup::new("fig5_train_test");
    group.sample_size(10);
    for (name, channel, kind) in [
        ("timing_no_vp", Channel::TimingWindow, PredictorKind::None),
        ("timing_lvp", Channel::TimingWindow, PredictorKind::Lvp),
        ("persistent_no_vp", Channel::Persistent, PredictorKind::None),
        ("persistent_lvp", Channel::Persistent, PredictorKind::Lvp),
    ] {
        group.bench(name, || {
            let e = evaluate(AttackCategory::TrainTest, channel, kind, &cfg);
            std::hint::black_box(e.ttest.p_value)
        });
    }
}
