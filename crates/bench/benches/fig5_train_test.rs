//! Figure 5 bench: the Train+Test timing-distribution panels.
//!
//! Prints the reproduced figure once, then times the four panel kernels
//! (timing-window / persistent × no-VP / LVP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpsec::attacks::AttackCategory;
use vpsec::experiment::{evaluate, Channel, PredictorKind};
use vpsim_bench::reports;

const TRIALS: usize = 20;

fn bench_fig5(c: &mut Criterion) {
    println!("{}", reports::figure_5(TRIALS));
    let cfg = reports::config(TRIALS);
    let mut group = c.benchmark_group("fig5_train_test");
    group.sample_size(10);
    for (name, channel, kind) in [
        ("timing_no_vp", Channel::TimingWindow, PredictorKind::None),
        ("timing_lvp", Channel::TimingWindow, PredictorKind::Lvp),
        ("persistent_no_vp", Channel::Persistent, PredictorKind::None),
        ("persistent_lvp", Channel::Persistent, PredictorKind::Lvp),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let e = evaluate(AttackCategory::TrainTest, channel, kind, &cfg);
                std::hint::black_box(e.ttest.p_value)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
