//! Figure 8 bench: the Test+Hit timing-distribution panels.

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{evaluate, Channel, PredictorKind};
use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_harness::Exec;

const TRIALS: usize = 20;

fn main() {
    println!("{}", reports::figure_8(TRIALS, &Exec::default()));
    let cfg = reports::config(TRIALS);
    let mut group = BenchGroup::new("fig8_test_hit");
    group.sample_size(10);
    for (name, channel, kind) in [
        ("timing_no_vp", Channel::TimingWindow, PredictorKind::None),
        ("timing_lvp", Channel::TimingWindow, PredictorKind::Lvp),
        ("persistent_no_vp", Channel::Persistent, PredictorKind::None),
        ("persistent_lvp", Channel::Persistent, PredictorKind::Lvp),
    ] {
        group.bench(name, || {
            let e = evaluate(AttackCategory::TestHit, channel, kind, &cfg);
            std::hint::black_box(e.ttest.p_value)
        });
    }
}
