//! §VI-B bench: the R-type window sweep (minimal secure windows).

use vpsec::attacks::AttackCategory;
use vpsec::defense::window_sweep;
use vpsec::experiment::{Channel, PredictorKind};
use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_harness::Exec;

const TRIALS: usize = 20;

fn main() {
    println!("{}", reports::defense_report(TRIALS, &Exec::default()));
    let base = reports::config(TRIALS);
    let mut group = BenchGroup::new("defense_window_sweep");
    group.sample_size(10);
    for (name, cat, windows) in [
        ("train_test", AttackCategory::TrainTest, &[1u64, 3][..]),
        ("test_hit", AttackCategory::TestHit, &[1u64, 9][..]),
    ] {
        group.bench(name, || {
            let sweep = window_sweep(
                cat,
                Channel::TimingWindow,
                PredictorKind::Lvp,
                windows,
                &base,
            );
            std::hint::black_box(sweep.len())
        });
    }
}
