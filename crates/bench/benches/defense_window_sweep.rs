//! §VI-B bench: the R-type window sweep (minimal secure windows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpsec::attacks::AttackCategory;
use vpsec::defense::window_sweep;
use vpsec::experiment::{Channel, PredictorKind};
use vpsim_bench::reports;

const TRIALS: usize = 20;

fn bench_defenses(c: &mut Criterion) {
    println!("{}", reports::defense_report(TRIALS));
    let base = reports::config(TRIALS);
    let mut group = c.benchmark_group("defense_window_sweep");
    group.sample_size(10);
    for (name, cat, windows) in [
        ("train_test", AttackCategory::TrainTest, &[1u64, 3][..]),
        ("test_hit", AttackCategory::TestHit, &[1u64, 9][..]),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let sweep = window_sweep(
                    cat,
                    Channel::TimingWindow,
                    PredictorKind::Lvp,
                    windows,
                    &base,
                );
                std::hint::black_box(sweep.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defenses);
criterion_main!(benches);
