//! Table II bench: the 576-combination enumeration and rule filter.

use vpsec::model::enumerate;
use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;

fn main() {
    println!("{}", reports::table_ii());
    BenchGroup::new("table2").bench("enumerate_576", || {
        let e = enumerate();
        assert_eq!(e.effective.len(), 12);
        std::hint::black_box(e.effective.len())
    });
}
