//! Table II bench: the 576-combination enumeration and rule filter.

use criterion::{criterion_group, criterion_main, Criterion};
use vpsec::model::enumerate;
use vpsim_bench::reports;

fn bench_table2(c: &mut Criterion) {
    println!("{}", reports::table_ii());
    c.bench_function("table2_enumerate_576", |b| {
        b.iter(|| {
            let e = enumerate();
            assert_eq!(e.effective.len(), 12);
            std::hint::black_box(e.effective.len())
        });
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
