//! Table III bench: every attack category over both channels.

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{try_evaluate, Channel, PredictorKind};
use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_harness::Exec;

const TRIALS: usize = 20;

fn main() {
    println!("{}", reports::table_iii(TRIALS, &Exec::default()));
    let cfg = reports::config(TRIALS);
    let mut group = BenchGroup::new("table3");
    group.sample_size(10);
    for cat in AttackCategory::ALL {
        group.bench(&format!("{cat}"), || {
            let tw = try_evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &cfg);
            let p = try_evaluate(cat, Channel::Persistent, PredictorKind::Lvp, &cfg);
            std::hint::black_box((tw.map(|e| e.ttest.p_value), p.map(|e| e.ttest.p_value)))
        });
    }
}
