//! Table III bench: every attack category over both channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpsec::attacks::AttackCategory;
use vpsec::experiment::{try_evaluate, Channel, PredictorKind};
use vpsim_bench::reports;

const TRIALS: usize = 20;

fn bench_table3(c: &mut Criterion) {
    println!("{}", reports::table_iii(TRIALS));
    let cfg = reports::config(TRIALS);
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for cat in AttackCategory::ALL {
        group.bench_function(BenchmarkId::from_parameter(format!("{cat}")), |b| {
            b.iter(|| {
                let tw = try_evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &cfg);
                let p = try_evaluate(cat, Channel::Persistent, PredictorKind::Lvp, &cfg);
                std::hint::black_box((tw.map(|e| e.ttest.p_value), p.map(|e| e.ttest.p_value)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
