//! Ablation benches: index truncation, confidence threshold and
//! predictor-type comparisons, plus raw simulator throughput.

use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_harness::Exec;
use vpsim_isa::{ProgramBuilder, Reg};
use vpsim_mem::MemoryConfig;
use vpsim_pipeline::{CoreConfig, Machine};
use vpsim_predictor::{Lvp, LvpConfig, NoPredictor, Vtage, VtageConfig};

fn main() {
    println!("{}", reports::ablation_report(20, &Exec::default()));

    BenchGroup::new("ablations").bench("index_bits_coverage", || {
        std::hint::black_box(reports::index_bits_ablation(128, 4))
    });

    // Raw simulator throughput with each predictor: a tight load loop.
    let mut group = BenchGroup::new("simulator_throughput");
    group.sample_size(10);
    let program = {
        let mut pb = ProgramBuilder::new();
        pb.li(Reg::R1, 0x1000).li(Reg::R2, 0).li(Reg::R3, 256);
        pb.label("top").unwrap();
        pb.load(Reg::R4, Reg::R1, 0)
            .flush(Reg::R1, 0)
            .addi(Reg::R2, Reg::R2, 1)
            .blt(Reg::R2, Reg::R3, "top")
            .halt();
        pb.build().unwrap()
    };
    for name in ["none", "lvp", "vtage"] {
        group.bench(name, || {
            let vp: Box<dyn vpsim_predictor::ValuePredictor> = match name {
                "none" => Box::new(NoPredictor::new()),
                "lvp" => Box::new(Lvp::new(LvpConfig::default())),
                _ => Box::new(Vtage::new(VtageConfig::default())),
            };
            let mut m = Machine::new(CoreConfig::default(), MemoryConfig::deterministic(), vp, 1);
            std::hint::black_box(m.run(0, &program).unwrap().cycles)
        });
    }
}
