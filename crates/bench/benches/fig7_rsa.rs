//! Figure 7 bench: the RSA exponent-bit leak.
//!
//! Prints the reproduced per-iteration observation series, then times
//! per-bit extraction and full-exponent recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use vpsim_bench::reports;
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

fn bench_fig7(c: &mut Criterion) {
    println!("{}", reports::figure_7(60, 3));
    let mut group = c.benchmark_group("fig7_rsa");
    group.sample_size(10);
    group.bench_function("leak_8_bit_exponent", |b| {
        let cfg = LeakConfig { calibration_runs: 4, ..LeakConfig::default() };
        let e = Mpi::from_u64(0b1011_0101);
        b.iter(|| std::hint::black_box(leak_exponent(&e, &cfg).success_rate()));
    });
    group.bench_function("powm_128_bit", |b| {
        let base = Mpi::from_hex("123456789abcdef0fedcba9876543210");
        let expo = Mpi::from_hex("fedcba98765432100123456789abcdef");
        let m = Mpi::from_hex("ffffffffffffffffffffffffffffff61");
        b.iter(|| std::hint::black_box(Mpi::powm(&base, &expo, &m)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
