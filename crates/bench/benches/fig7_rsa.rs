//! Figure 7 bench: the RSA exponent-bit leak.
//!
//! Prints the reproduced per-iteration observation series, then times
//! per-bit extraction and full-exponent recovery.

use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::reports;
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

fn main() {
    println!("{}", reports::figure_7(60, 3));
    let mut group = BenchGroup::new("fig7_rsa");
    group.sample_size(10);
    let cfg = LeakConfig {
        calibration_runs: 4,
        ..LeakConfig::default()
    };
    let e = Mpi::from_u64(0b1011_0101);
    group.bench("leak_8_bit_exponent", || {
        std::hint::black_box(leak_exponent(&e, &cfg).success_rate())
    });
    let base = Mpi::from_hex("123456789abcdef0fedcba9876543210");
    let expo = Mpi::from_hex("fedcba98765432100123456789abcdef");
    let m = Mpi::from_hex("ffffffffffffffffffffffffffffff61");
    group.bench("powm_128_bit", || {
        std::hint::black_box(Mpi::powm(&base, &expo, &m))
    });
}
