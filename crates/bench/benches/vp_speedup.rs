//! Performance-motivation bench (paper §I): value-predictor speedup on
//! synthetic kernels. Prints the speedup table, then times each
//! workload × predictor pair.

use vpsim_bench::microbench::BenchGroup;
use vpsim_bench::workloads::{performance_report, run_workload, standard_workloads};

fn main() {
    println!("{}", performance_report());
    let mut group = BenchGroup::new("vp_speedup");
    group.sample_size(10);
    for w in standard_workloads() {
        for kind in ["no VP", "LVP", "VTAGE"] {
            group.bench(&format!("{}/{kind}", w.name), || {
                std::hint::black_box(run_workload(&w, kind))
            });
        }
    }
}
