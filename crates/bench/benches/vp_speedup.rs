//! Performance-motivation bench (paper §I): value-predictor speedup on
//! synthetic kernels. Prints the speedup table, then times each
//! workload × predictor pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpsim_bench::workloads::{performance_report, run_workload, standard_workloads};

fn bench_speedup(c: &mut Criterion) {
    println!("{}", performance_report());
    let mut group = c.benchmark_group("vp_speedup");
    group.sample_size(10);
    for w in standard_workloads() {
        for kind in ["no VP", "LVP", "VTAGE"] {
            group.bench_function(BenchmarkId::new(w.name, kind), |b| {
                b.iter(|| std::hint::black_box(run_workload(&w, kind)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
