//! `bench_pipeline` — the machine-readable performance baseline for the
//! pipeline executor's hot loop.
//!
//! Runs a fixed workload matrix (attack-zoo trial programs and synthetic
//! kernels x predictor types x cache configurations) under
//! `vpsim-rng`-seeded determinism, measuring simulated cycles, wall time
//! and sim-cycles/sec per cell, and emits `BENCH_pipeline.json` so every
//! performance PR records its trajectory. The simulated-cycle counts are
//! bit-deterministic; only wall time varies between hosts.
//!
//! The DRAM-miss-heavy `flush_reload` cell is the headline number: a
//! Flush+Reload covert-channel loop spends most of its simulated time in
//! long miss stalls, which is exactly what the event-driven scheduler's
//! cycle-skipping collapses.

use std::fmt::Write as _;
use std::time::Instant;

use vpsec::attacks::{build_trial, AttackCategory, AttackSetup};
use vpsec::experiment::Channel;
use vpsim_isa::{AluOp, ProgramBuilder, Reg};
use vpsim_mem::MemoryConfig;
use vpsim_obs::RingRecorder;
use vpsim_pipeline::{CoreConfig, Machine, SchedStats};
use vpsim_predictor::{Lvp, LvpConfig, NoPredictor, ValuePredictor, Vtage, VtageConfig};
use vpsim_rng::SmallRng;

use crate::workloads::{constant_table, pointer_chase, random_values, Workload};

/// One cell of the benchmark matrix.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Workload name.
    pub workload: String,
    /// Predictor label (`novp`, `lvp`, `vtage`).
    pub predictor: String,
    /// Cache configuration label (`det`, `jitter`).
    pub mem: String,
    /// Total simulated cycles across all runs of the cell.
    pub cycles: u64,
    /// Wall-clock nanoseconds for those runs.
    pub wall_ns: u128,
    /// Scheduler phase counters summed over the cell's runs.
    pub sched: SchedStats,
}

impl BenchCell {
    /// The headline throughput metric.
    #[must_use]
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// The `workload/predictor/mem` key used for baseline matching.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.predictor, self.mem)
    }
}

/// A full benchmark run: the matrix plus metadata.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `quick` or `full`.
    pub mode: String,
    /// The measured cells.
    pub cells: Vec<BenchCell>,
}

fn predictor(kind: &str) -> Box<dyn ValuePredictor> {
    match kind {
        "novp" => Box::new(NoPredictor::new()),
        "lvp" => Box::new(Lvp::new(LvpConfig::default())),
        "vtage" => Box::new(Vtage::new(VtageConfig::default())),
        other => unreachable!("unknown predictor {other}"),
    }
}

fn mem_config(label: &str) -> MemoryConfig {
    match label {
        "det" => MemoryConfig::deterministic(),
        "jitter" => MemoryConfig::default(),
        other => unreachable!("unknown mem config {other}"),
    }
}

/// The Flush+Reload covert-channel loop: flush the probe set, touch the
/// secret slot, then time a reload of every slot. Every iteration is a
/// train of DRAM misses separated by long stalls — the worst case for a
/// tick-by-tick simulator and the best case for cycle-skipping.
#[must_use]
pub fn flush_reload(slots: u64, iterations: u64) -> Workload {
    const PROBE: u64 = 0x500_000;
    const STRIDE: u64 = 4096;
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, PROBE)
        .li(Reg::R9, STRIDE)
        .li(Reg::R2, 0)
        .li(Reg::R3, iterations);
    b.label("iter").unwrap();
    // Flush every slot.
    b.li(Reg::R4, 0).li(Reg::R5, slots).li(Reg::R6, PROBE);
    b.label("flush").unwrap();
    b.flush(Reg::R6, 0)
        .alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R9)
        .addi(Reg::R4, Reg::R4, 1)
        .blt(Reg::R4, Reg::R5, "flush")
        .fence();
    // Sender: touch the "secret" slot (iteration-dependent).
    b.load(Reg::R10, Reg::R1, 0);
    // Receiver: timed reload of every slot.
    b.li(Reg::R4, 0).li(Reg::R6, PROBE);
    b.label("reload").unwrap();
    b.rdtsc(Reg::R11)
        .load(Reg::R12, Reg::R6, 0)
        .alu(AluOp::Add, Reg::R13, Reg::R12, Reg::R11)
        .rdtsc(Reg::R14)
        .alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R9)
        .addi(Reg::R4, Reg::R4, 1)
        .blt(Reg::R4, Reg::R5, "reload")
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "iter")
        .halt();
    let memory = (0..slots).map(|i| (PROBE + i * STRIDE, i + 1)).collect();
    Workload {
        name: "flush_reload",
        program: b.build().expect("valid workload"),
        memory,
    }
}

/// An attack-zoo trial flattened into one repeatedly-run machine
/// workload: the steps of `category`/`channel` (mapped), re-run
/// `iterations` times on the same machine.
struct TrialWorkload {
    name: &'static str,
    category: AttackCategory,
    channel: Channel,
    iterations: usize,
}

/// Per-run ring capacity for the traced matrix. Small on purpose — the
/// overhead gate measures the *recording* cost, not allocation churn.
const BENCH_TRACE_CAPACITY: usize = 256;

fn run_trial_cell(
    t: &TrialWorkload,
    kind: &str,
    mem_label: &str,
    seed: u64,
    traced: bool,
) -> (u64, u128, SchedStats) {
    let setup = AttackSetup::default();
    let trial =
        build_trial(t.category, t.channel, true, &setup).expect("bench trials are supported");
    let mut machine = Machine::new(
        CoreConfig::default(),
        mem_config(mem_label),
        predictor(kind),
        seed,
    );
    for (addr, value) in &trial.memory_init {
        machine.mem_mut().store_value(*addr, *value);
    }
    let mut ring = RingRecorder::new(BENCH_TRACE_CAPACITY);
    let mut cycles = 0u64;
    let mut sched = SchedStats::default();
    let start = Instant::now();
    for _ in 0..t.iterations {
        for step in &trial.steps {
            for _ in 0..step.repeat {
                let r = if traced {
                    machine.run_traced(step.party.pid(), &step.program, &mut ring)
                } else {
                    machine.run(step.party.pid(), &step.program)
                }
                .unwrap_or_else(|e| panic!("bench step `{}` failed: {e}", step.label));
                cycles += r.cycles;
                sched.merge(&r.sched);
            }
        }
    }
    (cycles, start.elapsed().as_nanos(), sched)
}

fn run_kernel_cell(
    w: &Workload,
    kind: &str,
    mem_label: &str,
    seed: u64,
    traced: bool,
) -> (u64, u128, SchedStats) {
    let mut m = Machine::new(
        CoreConfig::default(),
        mem_config(mem_label),
        predictor(kind),
        seed,
    );
    for (a, v) in &w.memory {
        m.mem_mut().store_value(*a, *v);
    }
    let mut ring = RingRecorder::new(BENCH_TRACE_CAPACITY);
    let start = Instant::now();
    let r = if traced {
        m.run_traced(0, &w.program, &mut ring)
    } else {
        m.run(0, &w.program)
    }
    .expect("bench kernel halts");
    (r.cycles, start.elapsed().as_nanos(), r.sched)
}

/// Best-of-N timing: re-run a cell with the same seed, keep the fastest
/// wall time (the sustainable throughput, shielded from scheduler noise)
/// and assert the simulated cycle count never wavers between repeats.
fn best_of<F: FnMut() -> (u64, u128, SchedStats)>(
    reps: usize,
    mut run: F,
) -> (u64, u128, SchedStats) {
    let (cycles, mut wall_ns, sched) = run();
    for _ in 1..reps {
        let (c, w, _) = run();
        assert_eq!(c, cycles, "simulated cycles must not vary between repeats");
        wall_ns = wall_ns.min(w);
    }
    (cycles, wall_ns, sched)
}

/// Run the benchmark matrix. `quick` shrinks every workload so the whole
/// matrix finishes in a few seconds (the CI smoke configuration).
#[must_use]
pub fn run_matrix(quick: bool) -> BenchReport {
    run_matrix_with(quick, false)
}

/// [`run_matrix`] with event tracing enabled on every run, recording
/// into a bounded ring. Trace neutrality means simulated cycle counts
/// are identical to the untraced matrix, so the traced report carries
/// the same `mode` and can be checked against the committed baseline:
/// the cycle-exactness check then *proves* neutrality and the slowdown
/// gate bounds tracing overhead.
#[must_use]
pub fn run_matrix_traced(quick: bool) -> BenchReport {
    run_matrix_with(quick, true)
}

fn run_matrix_with(quick: bool, traced: bool) -> BenchReport {
    let scale = if quick { 1u64 } else { 4 };
    let reps = if quick { 2 } else { 3 };
    let kernels = [
        flush_reload(8, 64 * scale),
        pointer_chase(1024, 2 * scale),
        constant_table(1024, 2 * scale),
        random_values(128 * scale),
    ];
    let trials = [
        TrialWorkload {
            name: "zoo_train_test",
            category: AttackCategory::TrainTest,
            channel: Channel::Persistent,
            iterations: (16 * scale) as usize,
        },
        TrialWorkload {
            name: "zoo_test_hit",
            category: AttackCategory::TestHit,
            channel: Channel::Persistent,
            iterations: (16 * scale) as usize,
        },
    ];
    // Seeds are derived from one master stream so the matrix is
    // reproducible but cells are decorrelated.
    let mut rng = SmallRng::seed_from_u64(0xbe9c_0000_dac2_2021);
    let mut cells = Vec::new();
    for mem_label in ["det", "jitter"] {
        for kind in ["novp", "lvp", "vtage"] {
            for w in &kernels {
                let seed = rng.next_u64();
                let (cycles, wall_ns, sched) =
                    best_of(reps, || run_kernel_cell(w, kind, mem_label, seed, traced));
                cells.push(BenchCell {
                    workload: w.name.to_owned(),
                    predictor: kind.to_owned(),
                    mem: mem_label.to_owned(),
                    cycles,
                    wall_ns,
                    sched,
                });
            }
            for t in &trials {
                let seed = rng.next_u64();
                let (cycles, wall_ns, sched) =
                    best_of(reps, || run_trial_cell(t, kind, mem_label, seed, traced));
                cells.push(BenchCell {
                    workload: t.name.to_owned(),
                    predictor: kind.to_owned(),
                    mem: mem_label.to_owned(),
                    cycles,
                    wall_ns,
                    sched,
                });
            }
        }
    }
    BenchReport {
        mode: if quick { "quick" } else { "full" }.to_owned(),
        cells,
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled: the workspace is dependency-free by design).
// ---------------------------------------------------------------------

fn json_cell(c: &BenchCell, out: &mut String) {
    let _ = write!(
        out,
        "    {{\"workload\": \"{}\", \"predictor\": \"{}\", \"mem\": \"{}\", \
         \"cycles\": {}, \"wall_ns\": {}, \"sim_cycles_per_sec\": {:.1}, \
         \"sched\": {{\"ticks\": {}, \"skipped_cycles\": {}, \"completion_events\": {}, \
         \"wakeup_broadcasts\": {}, \"verify_events\": {}, \"issue_slots\": {}, \
         \"dispatched\": {}}}}}",
        c.workload,
        c.predictor,
        c.mem,
        c.cycles,
        c.wall_ns,
        c.sim_cycles_per_sec(),
        c.sched.ticks,
        c.sched.skipped_cycles,
        c.sched.completion_events,
        c.sched.wakeup_broadcasts,
        c.sched.verify_events,
        c.sched.issue_slots,
        c.sched.dispatched,
    );
}

/// Render the report (optionally with an embedded `before` baseline and
/// per-cell speedups) as the `BENCH_pipeline.json` document.
#[must_use]
pub fn to_json(report: &BenchReport, before: Option<&BenchReport>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"vpsim-bench-pipeline/v1\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode);
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        json_cell(c, &mut out);
        out.push_str(if i + 1 < report.cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]");
    if let Some(before) = before {
        out.push_str(",\n  \"before\": [\n");
        for (i, c) in before.cells.iter().enumerate() {
            json_cell(c, &mut out);
            out.push_str(if i + 1 < before.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"speedup\": {\n");
        let pairs: Vec<String> = report
            .cells
            .iter()
            .filter_map(|c| {
                let b = before.cells.iter().find(|b| b.key() == c.key())?;
                Some(format!(
                    "    \"{}\": {:.2}",
                    c.key(),
                    c.sim_cycles_per_sec() / b.sim_cycles_per_sec()
                ))
            })
            .collect();
        out.push_str(&pairs.join(",\n"));
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

use vpsim_json::field_str as field;

/// Re-hydrate a `BENCH_pipeline.json` document produced by [`to_json`]
/// into a [`BenchReport`]. A minimal line-oriented parser — each cell is
/// rendered on one line, so no JSON dependency is needed. Only the
/// primary `cells` section is read (an embedded `before` is ignored).
#[must_use]
pub fn report_from_json(json: &str) -> BenchReport {
    let mut cells = Vec::new();
    let mut mode = "unknown".to_owned();
    for line in json.lines() {
        if let Some(m) = field(line, "mode") {
            if !line.contains("\"workload\"") {
                mode = m.to_owned();
            }
        }
        if line.contains("\"before\"") {
            break;
        }
        let Some(workload) = field(line, "workload") else {
            continue;
        };
        let parsed = (|| -> Option<BenchCell> {
            Some(BenchCell {
                workload: workload.to_owned(),
                predictor: field(line, "predictor")?.to_owned(),
                mem: field(line, "mem")?.to_owned(),
                cycles: field(line, "cycles")?.parse().ok()?,
                wall_ns: field(line, "wall_ns")?.parse().ok()?,
                sched: SchedStats {
                    ticks: field(line, "ticks")?.parse().ok()?,
                    skipped_cycles: field(line, "skipped_cycles")?.parse().ok()?,
                    completion_events: field(line, "completion_events")?.parse().ok()?,
                    wakeup_broadcasts: field(line, "wakeup_broadcasts")?.parse().ok()?,
                    verify_events: field(line, "verify_events")?.parse().ok()?,
                    issue_slots: field(line, "issue_slots")?.parse().ok()?,
                    dispatched: field(line, "dispatched")?.parse().ok()?,
                },
            })
        })();
        if let Some(cell) = parsed {
            cells.push(cell);
        }
    }
    BenchReport { mode, cells }
}

/// The `(key, sim-cycles/sec, cycles)` triples used for baseline
/// comparison.
#[must_use]
pub fn parse_cells(json: &str) -> Vec<(String, f64, u64)> {
    report_from_json(json)
        .cells
        .iter()
        .map(|c| (c.key(), c.sim_cycles_per_sec(), c.cycles))
        .collect()
}

/// Compare a fresh run against a committed baseline file: error if any
/// cell's simulated cycle count changed (the scheduler must be
/// cycle-exact) or its throughput regressed by more than `max_slowdown`.
///
/// # Errors
///
/// Returns a human-readable description of every violated cell.
pub fn check_against(
    report: &BenchReport,
    baseline_json: &str,
    max_slowdown: f64,
) -> Result<(), String> {
    let base_report = report_from_json(baseline_json);
    if base_report.cells.is_empty() {
        return Err("baseline file contains no cells".to_owned());
    }
    // Cell keys are mode-independent but cycle counts are not: a quick
    // run checked against a full baseline would report phantom drift.
    if base_report.mode != report.mode {
        return Err(format!(
            "baseline mode `{}` does not match run mode `{}`",
            base_report.mode, report.mode
        ));
    }
    let baseline: Vec<(String, f64, u64)> = base_report
        .cells
        .iter()
        .map(|c| (c.key(), c.sim_cycles_per_sec(), c.cycles))
        .collect();
    let mut problems = Vec::new();
    for c in &report.cells {
        let Some((_, base_cps, base_cycles)) = baseline.iter().find(|(k, _, _)| *k == c.key())
        else {
            continue;
        };
        if c.cycles != *base_cycles {
            problems.push(format!(
                "{}: simulated cycles changed {} -> {} (scheduler must be cycle-exact)",
                c.key(),
                base_cycles,
                c.cycles
            ));
        }
        let cps = c.sim_cycles_per_sec();
        if cps * max_slowdown < *base_cps {
            problems.push(format!(
                "{}: throughput regressed >{}x: {:.0} -> {:.0} sim-cycles/sec",
                c.key(),
                max_slowdown,
                base_cps,
                cps
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Render the human-readable table printed by `bench_pipeline` and
/// `repro --bench`.
#[must_use]
pub fn render(report: &BenchReport) -> String {
    let mut out = String::from("Pipeline executor throughput (event-driven scheduler):\n\n");
    let _ = writeln!(
        out,
        "  {:<16} {:<7} {:<7} {:>14} {:>12} {:>16} {:>8}",
        "workload", "VP", "mem", "sim cycles", "wall ms", "sim-cycles/sec", "skip%"
    );
    for c in &report.cells {
        let skip_pct = if c.sched.ticks + c.sched.skipped_cycles == 0 {
            0.0
        } else {
            100.0 * c.sched.skipped_cycles as f64 / (c.sched.ticks + c.sched.skipped_cycles) as f64
        };
        let _ = writeln!(
            out,
            "  {:<16} {:<7} {:<7} {:>14} {:>12.2} {:>16.0} {:>7.1}%",
            c.workload,
            c.predictor,
            c.mem,
            c.cycles,
            c.wall_ns as f64 / 1e6,
            c.sim_cycles_per_sec(),
            skip_pct,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_reload_kernel_halts_and_misses() {
        let w = flush_reload(4, 2);
        let mut m = Machine::new(
            CoreConfig::default(),
            MemoryConfig::deterministic(),
            Box::new(NoPredictor::new()),
            0,
        );
        for (a, v) in &w.memory {
            m.mem_mut().store_value(*a, *v);
        }
        let r = m.run(0, &w.program).expect("halts");
        assert!(r.stats.loads > 0);
        assert_eq!(r.rdtsc_values.len() % 2, 0, "rdtsc readings pair up");
    }

    #[test]
    fn matrix_is_cycle_deterministic() {
        let a = run_matrix(true);
        let b = run_matrix(true);
        let ka: Vec<(String, u64)> = a.cells.iter().map(|c| (c.key(), c.cycles)).collect();
        let kb: Vec<(String, u64)> = b.cells.iter().map(|c| (c.key(), c.cycles)).collect();
        assert_eq!(ka, kb, "simulated cycles must not depend on wall time");
    }

    #[test]
    fn traced_matrix_is_cycle_identical_to_untraced() {
        let plain = run_matrix(true);
        let traced = run_matrix_traced(true);
        assert_eq!(plain.mode, traced.mode, "same mode so baselines match");
        let ka: Vec<(String, u64)> = plain.cells.iter().map(|c| (c.key(), c.cycles)).collect();
        let kb: Vec<(String, u64)> = traced.cells.iter().map(|c| (c.key(), c.cycles)).collect();
        assert_eq!(ka, kb, "tracing must not perturb simulated cycles");
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = run_matrix(true);
        let json = to_json(&r, None);
        let cells = parse_cells(&json);
        assert_eq!(cells.len(), r.cells.len());
        for (c, (key, _, cycles)) in r.cells.iter().zip(&cells) {
            assert_eq!(c.key(), *key);
            assert_eq!(c.cycles, *cycles);
        }
    }

    #[test]
    fn check_against_flags_cycle_drift() {
        let r = run_matrix(true);
        let json = to_json(&r, None);
        assert!(check_against(&r, &json, 2.0).is_ok());
        let mut drifted = r.clone();
        drifted.cells[0].cycles += 1;
        let err = check_against(&drifted, &json, 2.0).unwrap_err();
        assert!(err.contains("cycle-exact"), "{err}");
    }
}
