//! `bench_chaos` — the robustness sweep: attack accuracy as a function
//! of injected fault/noise intensity.
//!
//! For every effective attack variant of Table II (12 cells: the six
//! categories over the timing-window channel on LVP, the three
//! persistent-capable categories on the persistent channel, and the same
//! three on VTAGE) plus the end-to-end RSA exponent leak, the sweep
//! transmits a fixed message at every chaos level (0 = clean … 4 =
//! hostile co-tenant) twice — once with the paper's fixed-threshold
//! receiver and once with the self-calibrating receiver — and records
//! the decoded accuracy.
//!
//! Everything here is simulated and seeded: the whole report is
//! bit-deterministic, so `--check` against the committed
//! `BENCH_chaos.quick.json` demands *exact* equality, cell for cell. The
//! committed full report (`BENCH_chaos.json`) is the paper-shaped
//! artifact: accuracy degrades gracefully (monotonically on average) as
//! the noise scales, and the self-calibrating receiver dominates the
//! fixed one wherever noise is nonzero.

use std::fmt::Write as _;

use vpsec::attacks::AttackCategory;
use vpsec::chaos::ChaosConfig;
use vpsec::covert::CovertConfig;
use vpsec::experiment::{Channel, ExperimentConfig, PredictorKind};
use vpsec::receiver::{transmit, ReceiverConfig, ReceiverKind};
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

/// One measured cell of the robustness sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Variant label, `category/channel/predictor` (or `rsa/exponent`).
    pub variant: String,
    /// Chaos level (0 = off).
    pub level: u8,
    /// Receiver label (`fixed` or `selfcal`).
    pub receiver: String,
    /// Bits transmitted.
    pub bits: usize,
    /// Bits decoded incorrectly.
    pub bit_errors: usize,
    /// Trials spent on data bits (repetitions/retries included).
    pub data_trials: usize,
    /// Trials spent on calibration and in-band probes.
    pub probe_trials: usize,
    /// Simulated cycles consumed by the cell.
    pub sim_cycles: u64,
}

impl ChaosCell {
    /// Fraction of bits decoded correctly.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.bits == 0 {
            return 1.0;
        }
        1.0 - self.bit_errors as f64 / self.bits as f64
    }

    /// The `variant@level/receiver` key used for baseline matching.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}@{}/{}", self.variant, self.level, self.receiver)
    }
}

/// A full robustness sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// `quick` or `full`.
    pub mode: String,
    /// Chaos levels swept.
    pub levels: Vec<u8>,
    /// The measured cells.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// Mean accuracy over the attack variants (RSA excluded) for one
    /// level and receiver — the headline degradation series.
    #[must_use]
    pub fn mean_accuracy(&self, level: u8, receiver: &str) -> f64 {
        let accs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.level == level && c.receiver == receiver && !c.variant.starts_with("rsa"))
            .map(ChaosCell::accuracy)
            .collect();
        if accs.is_empty() {
            return 0.0;
        }
        accs.iter().sum::<f64>() / accs.len() as f64
    }
}

/// The 12 effective attack variants of Table II as covert channels.
fn variants() -> Vec<(&'static str, AttackCategory, Channel, PredictorKind)> {
    use AttackCategory as A;
    vec![
        (
            "train_hit/tw/lvp",
            A::TrainHit,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "train_test/tw/lvp",
            A::TrainTest,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "spill_over/tw/lvp",
            A::SpillOver,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "test_hit/tw/lvp",
            A::TestHit,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "fill_up/tw/lvp",
            A::FillUp,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "modify_test/tw/lvp",
            A::ModifyTest,
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "train_test/pers/lvp",
            A::TrainTest,
            Channel::Persistent,
            PredictorKind::Lvp,
        ),
        (
            "test_hit/pers/lvp",
            A::TestHit,
            Channel::Persistent,
            PredictorKind::Lvp,
        ),
        (
            "fill_up/pers/lvp",
            A::FillUp,
            Channel::Persistent,
            PredictorKind::Lvp,
        ),
        (
            "train_test/tw/vtage",
            A::TrainTest,
            Channel::TimingWindow,
            PredictorKind::Vtage,
        ),
        (
            "test_hit/tw/vtage",
            A::TestHit,
            Channel::TimingWindow,
            PredictorKind::Vtage,
        ),
        (
            "fill_up/tw/vtage",
            A::FillUp,
            Channel::TimingWindow,
            PredictorKind::Vtage,
        ),
    ]
}

/// The fixed test pattern: alternating-ish bytes exercising both symbol
/// polarities evenly.
fn message(bytes: usize) -> Vec<u8> {
    const PATTERN: [u8; 8] = [0xa5, 0x3c, 0x96, 0x0f, 0x5a, 0xc3, 0x69, 0xf0];
    (0..bytes).map(|i| PATTERN[i % PATTERN.len()]).collect()
}

fn receiver_config(
    kind: ReceiverKind,
    variant_seed: u64,
    category: AttackCategory,
    channel: Channel,
    predictor: PredictorKind,
    level: u8,
) -> ReceiverConfig {
    let covert = CovertConfig {
        category,
        channel,
        predictor,
        experiment: ExperimentConfig {
            seed: variant_seed,
            chaos: ChaosConfig::level(level),
            ..ExperimentConfig::default()
        },
        calibration: 6,
    };
    match kind {
        ReceiverKind::Fixed => ReceiverConfig::fixed(covert),
        ReceiverKind::SelfCalibrating => ReceiverConfig::self_calibrating(covert),
    }
}

/// Run the robustness sweep over every chaos level. `quick` shrinks the
/// message so the whole sweep finishes in CI time; the committed full
/// report uses 8-byte messages and the 64-bit RSA exponent.
#[must_use]
pub fn run_sweep(quick: bool) -> ChaosReport {
    let levels: Vec<u8> = (0..ChaosConfig::NUM_LEVELS).collect();
    run_sweep_levels(quick, &levels)
}

/// [`run_sweep`] restricted to the given chaos levels (`repro --chaos L`
/// runs a single one).
#[must_use]
pub fn run_sweep_levels(quick: bool, levels: &[u8]) -> ChaosReport {
    let levels = levels.to_vec();
    let msg = message(if quick { 2 } else { 8 });
    let mut cells = Vec::new();
    for (vi, (name, category, channel, predictor)) in variants().into_iter().enumerate() {
        let variant_seed = 0xDAC_2021 ^ (vi as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &level in &levels {
            for kind in [ReceiverKind::Fixed, ReceiverKind::SelfCalibrating] {
                let cfg = receiver_config(kind, variant_seed, category, channel, predictor, level);
                let r = transmit(&msg, &cfg).expect("all 12 variants are supported");
                cells.push(ChaosCell {
                    variant: name.to_owned(),
                    level,
                    receiver: kind.to_string(),
                    bits: r.bits(),
                    bit_errors: r.bit_errors,
                    data_trials: r.data_trials,
                    probe_trials: r.probe_trials,
                    sim_cycles: r.total_cycles,
                });
            }
        }
    }
    // The end-to-end RSA exponent leak rides along: fixed = the paper's
    // Figure 7 one-time threshold; selfcal = in-band recalibration.
    let exponent = Mpi::from_u64(if quick { 0xA53C } else { 0xA53C_960F_5AC3_69F0 });
    for &level in &levels {
        for (receiver, recalibrate_every) in [("fixed", 0usize), ("selfcal", 8)] {
            let cfg = LeakConfig {
                chaos: ChaosConfig::level(level),
                recalibrate_every,
                calibration_runs: 6,
                ..LeakConfig::default()
            };
            let r = leak_exponent(&exponent, &cfg);
            let bits = r.true_bits.len();
            let wrong = r
                .true_bits
                .iter()
                .zip(&r.recovered_bits)
                .filter(|(a, b)| a != b)
                .count();
            cells.push(ChaosCell {
                variant: "rsa/exponent".to_owned(),
                level,
                receiver: receiver.to_owned(),
                bits,
                bit_errors: wrong,
                data_trials: bits,
                probe_trials: 2 * cfg.calibration_runs
                    + 2 * bits.checked_div(recalibrate_every).unwrap_or(0),
                sim_cycles: r.total_cycles,
            });
        }
    }
    ChaosReport {
        mode: if quick { "quick" } else { "full" }.to_owned(),
        levels,
        cells,
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled: the workspace is dependency-free by design).
// ---------------------------------------------------------------------

fn json_cell(c: &ChaosCell, out: &mut String) {
    let _ = write!(
        out,
        "    {{\"variant\": \"{}\", \"level\": {}, \"receiver\": \"{}\", \
         \"bits\": {}, \"bit_errors\": {}, \"accuracy\": {:.4}, \
         \"data_trials\": {}, \"probe_trials\": {}, \"sim_cycles\": {}}}",
        c.variant,
        c.level,
        c.receiver,
        c.bits,
        c.bit_errors,
        c.accuracy(),
        c.data_trials,
        c.probe_trials,
        c.sim_cycles,
    );
}

/// Render the report as the `BENCH_chaos.json` document.
#[must_use]
pub fn to_json(report: &ChaosReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"vpsim-bench-chaos/v1\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode);
    out.push_str("  \"summary\": [\n");
    for (i, &level) in report.levels.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"level\": {level}, \"mean_accuracy_fixed\": {:.4}, \
             \"mean_accuracy_selfcal\": {:.4}}}",
            report.mean_accuracy(level, "fixed"),
            report.mean_accuracy(level, "selfcal"),
        );
        out.push_str(if i + 1 < report.levels.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        json_cell(c, &mut out);
        out.push_str(if i + 1 < report.cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

use vpsim_json::field_str as field;

/// Re-hydrate a `BENCH_chaos.json` document produced by [`to_json`].
#[must_use]
pub fn report_from_json(json: &str) -> ChaosReport {
    let mut cells = Vec::new();
    let mut levels = Vec::new();
    let mut mode = "unknown".to_owned();
    for line in json.lines() {
        if let Some(m) = field(line, "mode") {
            if !line.contains("\"variant\"") {
                mode = m.to_owned();
            }
        }
        if let Some(l) = field(line, "level") {
            if line.contains("mean_accuracy_fixed") {
                if let Ok(l) = l.parse() {
                    levels.push(l);
                }
            }
        }
        let Some(variant) = field(line, "variant") else {
            continue;
        };
        let parsed = (|| -> Option<ChaosCell> {
            Some(ChaosCell {
                variant: variant.to_owned(),
                level: field(line, "level")?.parse().ok()?,
                receiver: field(line, "receiver")?.to_owned(),
                bits: field(line, "bits")?.parse().ok()?,
                bit_errors: field(line, "bit_errors")?.parse().ok()?,
                data_trials: field(line, "data_trials")?.parse().ok()?,
                probe_trials: field(line, "probe_trials")?.parse().ok()?,
                sim_cycles: field(line, "sim_cycles")?.parse().ok()?,
            })
        })();
        if let Some(cell) = parsed {
            cells.push(cell);
        }
    }
    ChaosReport {
        mode,
        levels,
        cells,
    }
}

/// Compare a fresh sweep against a committed baseline: the sweep is
/// fully simulated and seeded, so every cell must match **exactly** —
/// any drift means the noise plane, a receiver, or the simulator's
/// determinism changed, and the baseline must be regenerated
/// deliberately.
///
/// # Errors
///
/// Returns a description of every mismatched cell.
pub fn check_against(report: &ChaosReport, baseline_json: &str) -> Result<(), String> {
    let base = report_from_json(baseline_json);
    if base.cells.is_empty() {
        return Err("baseline file contains no cells".to_owned());
    }
    if base.mode != report.mode {
        return Err(format!(
            "baseline mode `{}` does not match run mode `{}`",
            base.mode, report.mode
        ));
    }
    let mut problems = Vec::new();
    if base.cells.len() != report.cells.len() {
        problems.push(format!(
            "cell count changed: baseline {} vs run {}",
            base.cells.len(),
            report.cells.len()
        ));
    }
    for c in &report.cells {
        let Some(b) = base.cells.iter().find(|b| b.key() == c.key()) else {
            problems.push(format!("{}: missing from baseline", c.key()));
            continue;
        };
        if b != c {
            problems.push(format!(
                "{}: drifted (errors {} -> {}, data_trials {} -> {}, cycles {} -> {})",
                c.key(),
                b.bit_errors,
                c.bit_errors,
                b.data_trials,
                c.data_trials,
                b.sim_cycles,
                c.sim_cycles
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Render the human-readable degradation table.
#[must_use]
pub fn render(report: &ChaosReport) -> String {
    let mut out = String::from("Robustness sweep: accuracy under injected faults/noise\n\n");
    let _ = writeln!(out, "  {:<22} {:>9} {:>9}", "", "fixed", "selfcal");
    for &level in &report.levels {
        let _ = writeln!(
            out,
            "  {:<22} {:>8.1}% {:>8.1}%",
            format!("mean @ level {level}"),
            100.0 * report.mean_accuracy(level, "fixed"),
            100.0 * report.mean_accuracy(level, "selfcal"),
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "  {:<22} {:>5} {:>9} {:>9} {:>11} {:>12}",
        "variant", "level", "receiver", "accuracy", "data-trials", "sim-cycles"
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "  {:<22} {:>5} {:>9} {:>8.1}% {:>11} {:>12}",
            c.variant,
            c.level,
            c.receiver,
            100.0 * c.accuracy(),
            c.data_trials,
            c.sim_cycles,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ChaosReport {
        // A hand-built report: JSON round-trip and check logic only (the
        // real sweep is exercised by the bench binary and CI).
        let mk = |variant: &str, level: u8, receiver: &str, errors: usize| ChaosCell {
            variant: variant.to_owned(),
            level,
            receiver: receiver.to_owned(),
            bits: 16,
            bit_errors: errors,
            data_trials: 16,
            probe_trials: 12,
            sim_cycles: 1_000_000 + u64::from(level) * 1000,
        };
        ChaosReport {
            mode: "quick".to_owned(),
            levels: vec![0, 1],
            cells: vec![
                mk("train_test/tw/lvp", 0, "fixed", 0),
                mk("train_test/tw/lvp", 0, "selfcal", 0),
                mk("train_test/tw/lvp", 1, "fixed", 3),
                mk("train_test/tw/lvp", 1, "selfcal", 1),
            ],
        }
    }

    #[test]
    fn json_roundtrips_exactly() {
        let r = tiny_report();
        let parsed = report_from_json(&to_json(&r));
        assert_eq!(parsed, r);
    }

    #[test]
    fn check_flags_any_drift() {
        let r = tiny_report();
        let json = to_json(&r);
        assert!(check_against(&r, &json).is_ok());
        let mut drifted = r.clone();
        drifted.cells[2].bit_errors = 4;
        let err = check_against(&drifted, &json).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        let mut modeless = r;
        modeless.mode = "full".to_owned();
        assert!(check_against(&modeless, &json).is_err());
    }

    #[test]
    fn mean_accuracy_summarises_levels() {
        let r = tiny_report();
        assert!((r.mean_accuracy(0, "fixed") - 1.0).abs() < 1e-12);
        assert!(r.mean_accuracy(1, "selfcal") > r.mean_accuracy(1, "fixed"));
    }

    #[test]
    fn twelve_variants_cover_table_ii() {
        let v = variants();
        assert_eq!(v.len(), 12);
        // Persistent appears only for the three persistent-capable
        // categories; names are unique.
        let names: std::collections::HashSet<&str> = v.iter().map(|(n, ..)| *n).collect();
        assert_eq!(names.len(), 12);
        assert_eq!(
            v.iter()
                .filter(|(_, _, c, _)| *c == Channel::Persistent)
                .count(),
            3
        );
    }
}
