//! The `repro` serve-plane subcommands: `serve`, `run`, `submit`,
//! `watch`, `query`, `cancel`, `shutdown`.
//!
//! ```text
//! repro serve --port 0 --state serve-state --runners 2 --jobs 4
//! repro serve --port 0 --isolate process      # default substrate
//! repro run   --spec campaign.json --isolate process --workers 4
//! repro submit --addr 127.0.0.1:7070 --spec campaign.json
//! repro watch  --addr 127.0.0.1:7070 --id 1
//! repro query  --addr 127.0.0.1:7070 [--id 1]
//! repro cancel --addr 127.0.0.1:7070 --id 1
//! repro metrics --addr 127.0.0.1:7070
//! repro shutdown --addr 127.0.0.1:7070
//! ```
//!
//! `serve` prints exactly one line to stdout — `vpsim-serve listening
//! on <addr>` — before blocking, so scripts (and the e2e suite) can
//! discover an ephemeral port by reading it.
//!
//! `run` executes one campaign spec locally (no daemon) and prints the
//! canonical result lines to stdout — the same bytes `watch` would
//! stream — so backends can be byte-compared: `--isolate process`
//! must produce output identical to `--isolate thread`, even when a
//! worker process is killed mid-run.

use std::io::{Read, Write};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use vpsim_harness::{CampaignSpec, Exec, FleetConfig, Isolate, WorkerBackend};
use vpsim_serve::{client, ServeConfig, Server, StreamLog, StreamObserver};

/// Parsed serve-plane invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeCmd {
    /// Run the daemon until shut down.
    Serve(ServeArgs),
    /// Execute one spec locally and print canonical result lines.
    Run {
        spec: String,
        isolate: Option<Isolate>,
        workers: usize,
        resume: Option<String>,
    },
    /// Submit a spec file (or stdin) and print the acknowledgement.
    Submit { addr: String, spec: Option<String> },
    /// Stream one campaign's results to stdout.
    Watch { addr: String, id: u64 },
    /// Print one campaign's progress, or the full list.
    Query { addr: String, id: Option<u64> },
    /// Cancel a campaign.
    Cancel { addr: String, id: u64 },
    /// Print the daemon's metrics snapshot.
    Metrics { addr: String },
    /// Gracefully stop the daemon.
    Shutdown { addr: String },
}

/// Arguments of `repro serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// TCP port (`0` = ephemeral).
    pub port: u16,
    /// State directory for specs and manifests.
    pub state: String,
    /// Concurrent campaign runners.
    pub runners: usize,
    /// Worker threads per campaign.
    pub jobs: usize,
    /// Default execution substrate (specs can override per campaign).
    pub isolate: Isolate,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            port: 7070,
            state: "serve-state".to_owned(),
            runners: 2,
            jobs: 1,
            isolate: Isolate::Thread,
        }
    }
}

fn value(flag: &str, it: &mut dyn Iterator<Item = String>) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects a number, got `{v}`"))
}

/// Parse a serve-plane invocation; `argv` excludes the program name
/// but includes the subcommand word.
///
/// # Errors
///
/// Returns a one-line message naming the offending argument.
pub fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<ServeCmd, String> {
    let mut it = argv.into_iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let mut addr: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut spec: Option<String> = None;
    let mut isolate: Option<Isolate> = None;
    let mut workers = 1usize;
    let mut resume: Option<String> = None;
    let mut serve = ServeArgs::default();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(value("--addr", &mut it)?),
            "--id" => id = Some(parse_num("--id", &value("--id", &mut it)?)?),
            "--spec" => spec = Some(value("--spec", &mut it)?),
            "--isolate" => {
                let v = value("--isolate", &mut it)?;
                let iso = Isolate::parse(&v)
                    .ok_or_else(|| format!("--isolate expects thread|process, got `{v}`"))?;
                isolate = Some(iso);
                serve.isolate = iso;
            }
            "--workers" => workers = parse_num("--workers", &value("--workers", &mut it)?)?,
            "--resume" => resume = Some(value("--resume", &mut it)?),
            "--port" => serve.port = parse_num("--port", &value("--port", &mut it)?)?,
            "--state" => serve.state = value("--state", &mut it)?,
            "--runners" => {
                serve.runners = parse_num("--runners", &value("--runners", &mut it)?)?;
                if serve.runners == 0 {
                    return Err("--runners must be at least 1".to_owned());
                }
            }
            "--jobs" => serve.jobs = parse_num("--jobs", &value("--jobs", &mut it)?)?,
            other => return Err(format!("unknown argument `{other}` for `{cmd}`")),
        }
    }
    let addr = |what: &str| addr.clone().ok_or(format!("{what} needs --addr HOST:PORT"));
    let id_for = |what: &str| id.ok_or(format!("{what} needs --id N"));
    match cmd.as_str() {
        "serve" => Ok(ServeCmd::Serve(serve)),
        "run" => Ok(ServeCmd::Run {
            spec: spec.ok_or("run needs --spec FILE")?,
            isolate,
            workers,
            resume,
        }),
        "submit" => Ok(ServeCmd::Submit {
            addr: addr("submit")?,
            spec,
        }),
        "watch" => Ok(ServeCmd::Watch {
            addr: addr("watch")?,
            id: id_for("watch")?,
        }),
        "query" => Ok(ServeCmd::Query {
            addr: addr("query")?,
            id,
        }),
        "cancel" => Ok(ServeCmd::Cancel {
            addr: addr("cancel")?,
            id: id_for("cancel")?,
        }),
        "metrics" => Ok(ServeCmd::Metrics {
            addr: addr("metrics")?,
        }),
        "shutdown" => Ok(ServeCmd::Shutdown {
            addr: addr("shutdown")?,
        }),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Whether `word` names a serve-plane subcommand.
#[must_use]
pub fn is_subcommand(word: &str) -> bool {
    matches!(
        word,
        "serve" | "run" | "submit" | "watch" | "query" | "cancel" | "metrics" | "shutdown"
    )
}

/// `repro run`: execute one spec in this process (thread backend) or a
/// supervised worker fleet (`--isolate process`), streaming the
/// canonical result lines to stdout. The bytes on stdout are a pure
/// function of the spec — backends and worker counts never change them.
fn run_local(
    spec_path: &str,
    isolate: Option<Isolate>,
    workers: usize,
    resume: Option<&str>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path}: {e}"))?;
    let spec = CampaignSpec::parse(&text).map_err(|e| e.to_string())?;
    let backend = match isolate.or(spec.isolate).unwrap_or_default() {
        Isolate::Thread => WorkerBackend::Thread,
        Isolate::Process => WorkerBackend::Process(FleetConfig {
            workers,
            ..FleetConfig::default()
        }),
    };
    let log = Arc::new(StreamLog::default());
    let observer = Arc::new(StreamObserver::new(
        Arc::clone(&log),
        Arc::new(AtomicUsize::new(0)),
        &spec.trials_per_cell(),
    ));
    let exec = Exec {
        jobs: workers,
        backend,
        resume: resume.map(std::path::PathBuf::from),
        observer: Some(observer),
        ..Exec::default()
    };
    let outcome = spec.to_campaign().run(&exec).map_err(|e| e.to_string())?;
    log.close();
    let mut out = std::io::stdout().lock();
    let mut cursor = 0usize;
    while let Some(batch) = log.next_batch(cursor) {
        cursor += batch.len();
        for line in batch {
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("[{}] {}", spec.name, outcome.stats);
    let failed = outcome
        .cells()
        .iter()
        .filter(|c| matches!(c.outcome, vpsim_harness::CellOutcome::Failed(_)))
        .count();
    if failed > 0 {
        return Err(format!("{failed} cell(s) failed"));
    }
    Ok(())
}

fn print_response(r: &client::Response) -> Result<(), String> {
    print!("{}", r.body);
    if !r.body.ends_with('\n') {
        println!();
    }
    if r.status >= 400 {
        return Err(format!("server answered {}", r.status));
    }
    Ok(())
}

/// Execute a parsed serve-plane command.
///
/// # Errors
///
/// Returns a one-line message on connection failures, non-2xx
/// responses, or unreadable spec files.
pub fn run(cmd: &ServeCmd) -> Result<(), String> {
    match cmd {
        ServeCmd::Serve(args) => {
            let server = Server::start(ServeConfig {
                addr: format!("127.0.0.1:{}", args.port),
                state_dir: std::path::PathBuf::from(&args.state),
                runners: args.runners,
                jobs: args.jobs,
                isolate: args.isolate,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot start daemon: {e}"))?;
            println!("vpsim-serve listening on {}", server.addr());
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            server.join();
            Ok(())
        }
        ServeCmd::Run {
            spec,
            isolate,
            workers,
            resume,
        } => run_local(spec, *isolate, *workers, resume.as_deref()),
        ServeCmd::Submit { addr, spec } => {
            let body = match spec {
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read spec {path}: {e}"))?,
                None => {
                    let mut text = String::new();
                    std::io::stdin()
                        .read_to_string(&mut text)
                        .map_err(|e| format!("cannot read spec from stdin: {e}"))?;
                    text
                }
            };
            let r = client::request(addr, "POST", "/campaigns", Some(&body))
                .map_err(|e| format!("submit failed: {e}"))?;
            print_response(&r)
        }
        ServeCmd::Watch { addr, id } => {
            let status = client::stream(addr, &format!("/campaigns/{id}/results"), |line| {
                println!("{line}");
            })
            .map_err(|e| format!("watch failed: {e}"))?;
            if status != 200 {
                return Err(format!("server answered {status}"));
            }
            Ok(())
        }
        ServeCmd::Query { addr, id } => {
            let path = match id {
                Some(id) => format!("/campaigns/{id}"),
                None => "/campaigns".to_owned(),
            };
            let r = client::request(addr, "GET", &path, None)
                .map_err(|e| format!("query failed: {e}"))?;
            print_response(&r)
        }
        ServeCmd::Cancel { addr, id } => {
            let r = client::request(addr, "POST", &format!("/campaigns/{id}/cancel"), None)
                .map_err(|e| format!("cancel failed: {e}"))?;
            print_response(&r)
        }
        ServeCmd::Metrics { addr } => {
            let r = client::request(addr, "GET", "/metrics", None)
                .map_err(|e| format!("metrics failed: {e}"))?;
            print_response(&r)
        }
        ServeCmd::Shutdown { addr } => {
            let r = client::request(addr, "POST", "/shutdown", None)
                .map_err(|e| format!("shutdown failed: {e}"))?;
            print_response(&r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeCmd, String> {
        parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn serve_defaults_and_overrides() {
        assert_eq!(
            parse(&["serve"]).unwrap(),
            ServeCmd::Serve(ServeArgs::default())
        );
        let ServeCmd::Serve(a) = parse(&[
            "serve",
            "--port",
            "0",
            "--state",
            "x",
            "--runners",
            "3",
            "--jobs",
            "4",
        ])
        .unwrap() else {
            panic!("not a serve command");
        };
        assert_eq!(
            (a.port, a.state.as_str(), a.runners, a.jobs),
            (0, "x", 3, 4)
        );
    }

    #[test]
    fn client_commands_require_addr_and_id() {
        assert!(parse(&["watch"]).unwrap_err().contains("--addr"));
        assert!(parse(&["watch", "--addr", "h:1"])
            .unwrap_err()
            .contains("--id"));
        assert_eq!(
            parse(&["watch", "--addr", "h:1", "--id", "7"]).unwrap(),
            ServeCmd::Watch {
                addr: "h:1".to_owned(),
                id: 7
            }
        );
        assert_eq!(
            parse(&["query", "--addr", "h:1"]).unwrap(),
            ServeCmd::Query {
                addr: "h:1".to_owned(),
                id: None
            }
        );
    }

    #[test]
    fn garbage_rejected_with_one_line_errors() {
        for case in [
            vec!["serve", "--port", "many"],
            vec!["serve", "--runners", "0"],
            vec!["cancel", "--addr", "h:1", "--id", "x"],
            vec!["frobnicate"],
            vec!["submit", "--addr", "h:1", "--wat"],
        ] {
            let err = parse(&case).unwrap_err();
            assert!(!err.contains('\n'), "{case:?}: {err}");
        }
    }

    #[test]
    fn subcommand_detection() {
        assert!(is_subcommand("serve"));
        assert!(is_subcommand("shutdown"));
        assert!(!is_subcommand("--all"));
        assert!(!is_subcommand("status"));
    }
}
