//! CSV export of experiment data, for external plotting of the figures.
//!
//! Every function returns CSV text (header + rows); the `repro` binary's
//! `--csv DIR` flag writes the standard set to disk. All evaluations run
//! through the `vpsim-harness` campaign engine, so an [`Exec`] with
//! `jobs > 1` parallelizes the export and still produces byte-identical
//! CSV.

use std::fmt::Write as _;

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{Channel, Evaluation, ExperimentConfig, PredictorKind};
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};
use vpsim_harness::{Campaign, CampaignOutcome, CellSpec, Exec};
use vpsim_predictor::DefenseSpec;

use crate::reports;

/// Append a `#`-comment footer when the campaign ran degraded (torn
/// manifest lines recovered, I/O faults degraded around, timeouts), so
/// a CSV produced by a damaged run carries its own provenance note.
/// Clean runs append nothing and the CSV stays byte-identical.
fn degradation_footer(outcome: &CampaignOutcome, out: &mut String) {
    let s = &outcome.stats;
    if s.torn_lines + s.io_faults + s.deadline_failed + s.panics > 0 {
        let _ = writeln!(
            out,
            "# degraded run: {} torn line(s) recovered, {} I/O fault(s), \
             {} deadline failure(s), {} panic(s)",
            s.torn_lines, s.io_faults, s.deadline_failed, s.panics
        );
    }
}

/// Raw mapped/unmapped observations of one evaluation: one row per
/// trial, `trial,case,cycles`.
#[must_use]
pub fn distribution_csv(e: &Evaluation) -> String {
    let mut out = String::from("trial,case,cycles\n");
    for (i, v) in e.mapped.iter().enumerate() {
        let _ = writeln!(out, "{i},mapped,{v}");
    }
    for (i, v) in e.unmapped.iter().enumerate() {
        let _ = writeln!(out, "{i},unmapped,{v}");
    }
    out
}

/// Figure 5/8 data: the four panels of a distribution figure,
/// `panel,channel,predictor,trial,case,cycles`.
///
/// # Panics
///
/// Panics if the campaign cannot run.
#[must_use]
pub fn figure_distributions_csv(
    category: AttackCategory,
    cfg: &ExperimentConfig,
    exec: &Exec,
) -> String {
    let mut out = String::from("panel,channel,predictor,trial,case,cycles\n");
    let panels = [
        (1, Channel::TimingWindow, PredictorKind::None),
        (2, Channel::TimingWindow, PredictorKind::Lvp),
        (3, Channel::Persistent, PredictorKind::None),
        (4, Channel::Persistent, PredictorKind::Lvp),
    ];
    let mut campaign = Campaign::new(format!("csv_dist_{category:?}"));
    for (panel, channel, kind) in panels {
        campaign.push(CellSpec::new(
            format!("{panel}"),
            category,
            channel,
            kind,
            cfg.clone(),
        ));
    }
    let outcome = campaign
        .run(exec)
        .unwrap_or_else(|e| panic!("distribution campaign: {e}"));
    for (panel, channel, kind) in panels {
        let Some(e) = outcome.get(&format!("{panel}")) else {
            continue;
        };
        for (case, obs) in [("mapped", &e.mapped), ("unmapped", &e.unmapped)] {
            for (i, v) in obs.iter().enumerate() {
                let _ = writeln!(out, "{panel},{channel},{kind},{i},{case},{v}");
            }
        }
    }
    degradation_footer(&outcome, &mut out);
    out
}

/// Table III as CSV: `category,channel,predictor,pvalue,rate_kbps,effective`.
///
/// # Panics
///
/// Panics if the campaign cannot run.
#[must_use]
pub fn table_iii_csv(cfg: &ExperimentConfig, exec: &Exec) -> String {
    let outcome = reports::table_iii_campaign(cfg)
        .run(exec)
        .unwrap_or_else(|e| panic!("table3 campaign: {e}"));
    let mut out = String::from("category,channel,predictor,pvalue,rate_kbps,effective\n");
    // Cells were pushed in the table's row order; unsupported cells have
    // no evaluation and produce no row.
    for cell in outcome.cells() {
        if let Some(e) = cell.evaluation() {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.3},{}",
                e.category,
                e.channel,
                e.predictor,
                e.ttest.p_value,
                e.rate_kbps,
                e.succeeds()
            );
        }
    }
    degradation_footer(&outcome, &mut out);
    out
}

/// The §VI-B window sweeps as CSV: `category,window,pvalue`.
///
/// # Panics
///
/// Panics if the campaign cannot run.
#[must_use]
pub fn window_sweep_csv(cfg: &ExperimentConfig, exec: &Exec) -> String {
    let mut campaign = Campaign::new("csv_window_sweep");
    for (cat, windows) in reports::SWEEPS {
        for &s in windows {
            let sweep_cfg = ExperimentConfig {
                defense: DefenseSpec {
                    r_type: Some(s),
                    ..DefenseSpec::none()
                },
                ..cfg.clone()
            };
            campaign.push(CellSpec::new(
                format!("{cat}|{s}"),
                cat,
                Channel::TimingWindow,
                PredictorKind::Lvp,
                sweep_cfg,
            ));
        }
    }
    let outcome = campaign
        .run(exec)
        .unwrap_or_else(|e| panic!("sweep campaign: {e}"));
    let mut out = String::from("category,window,pvalue\n");
    for (cat, windows) in reports::SWEEPS {
        for &s in windows {
            match outcome.try_eval(&format!("{cat}|{s}")) {
                Ok(e) => {
                    let _ = writeln!(out, "{cat},{s},{:.6}", e.ttest.p_value);
                }
                Err(err) => {
                    // Quarantined cell: keep the CSV parseable, note the
                    // loss as a comment row.
                    let _ = writeln!(out, "# {err}");
                }
            }
        }
    }
    degradation_footer(&outcome, &mut out);
    out
}

/// Figure 7 data: `iteration,e_bit,cycles`.
#[must_use]
pub fn figure_7_csv(bits: usize, seed: u64) -> String {
    let mut exponent = Mpi::one();
    for i in 0..bits.saturating_sub(1) {
        exponent = exponent.shl_bits(1);
        if (i * 7 + 3) % 5 < 2 {
            exponent = exponent.add(&Mpi::one());
        }
    }
    let r = leak_exponent(
        &exponent,
        &LeakConfig {
            seed,
            ..LeakConfig::default()
        },
    );
    let mut out = String::from("iteration,e_bit,cycles\n");
    for (i, (&bit, &obs)) in r.true_bits.iter().zip(&r.observations).enumerate() {
        let _ = writeln!(out, "{i},{},{obs}", u8::from(bit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsec::experiment::evaluate;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            trials: 6,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn distribution_csv_shape() {
        let e = evaluate(
            AttackCategory::FillUp,
            Channel::TimingWindow,
            PredictorKind::Lvp,
            &cfg(),
        );
        let csv = distribution_csv(&e);
        assert!(csv.starts_with("trial,case,cycles\n"));
        // Header + 6 mapped + 6 unmapped.
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.contains(",mapped,"));
        assert!(csv.contains(",unmapped,"));
    }

    #[test]
    fn table_csv_contains_every_supported_cell() {
        let csv = table_iii_csv(&cfg(), &Exec::default());
        // 6 timing-window × 2 predictors + 3 persistent × 2 predictors.
        assert_eq!(csv.lines().count(), 1 + 12 + 6);
        assert!(csv.contains("Spill Over,timing-window,LVP"));
        assert!(!csv.contains("Spill Over,persistent"));
    }

    #[test]
    fn table_csv_is_byte_identical_at_any_thread_count() {
        let serial = table_iii_csv(&cfg(), &Exec::default());
        let parallel = table_iii_csv(
            &cfg(),
            &Exec {
                jobs: 8,
                ..Exec::default()
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn figure_csv_is_byte_identical_at_any_thread_count() {
        let serial = figure_distributions_csv(AttackCategory::TrainTest, &cfg(), &Exec::default());
        let parallel = figure_distributions_csv(
            AttackCategory::TrainTest,
            &cfg(),
            &Exec {
                jobs: 8,
                ..Exec::default()
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_csv_rows() {
        let csv = window_sweep_csv(
            &cfg(),
            &Exec {
                jobs: 2,
                ..Exec::default()
            },
        );
        assert_eq!(csv.lines().count(), 1 + 5 + 8);
        assert!(csv.contains("Train + Test,3,"));
        assert!(csv.contains("Test + Hit,9,"));
    }

    #[test]
    fn figure7_csv_rows() {
        let csv = figure_7_csv(8, 1);
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.starts_with("iteration,e_bit,cycles\n"));
    }
}
