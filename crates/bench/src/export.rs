//! CSV export of experiment data, for external plotting of the figures.
//!
//! Every function returns CSV text (header + rows); the `repro` binary's
//! `--csv DIR` flag writes the standard set to disk.

use std::fmt::Write as _;

use vpsec::attacks::AttackCategory;
use vpsec::defense::window_sweep;
use vpsec::experiment::{try_evaluate, Channel, Evaluation, ExperimentConfig, PredictorKind};
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

/// Raw mapped/unmapped observations of one evaluation: one row per
/// trial, `trial,case,cycles`.
#[must_use]
pub fn distribution_csv(e: &Evaluation) -> String {
    let mut out = String::from("trial,case,cycles\n");
    for (i, v) in e.mapped.iter().enumerate() {
        let _ = writeln!(out, "{i},mapped,{v}");
    }
    for (i, v) in e.unmapped.iter().enumerate() {
        let _ = writeln!(out, "{i},unmapped,{v}");
    }
    out
}

/// Figure 5/8 data: the four panels of a distribution figure,
/// `panel,channel,predictor,trial,case,cycles`.
#[must_use]
pub fn figure_distributions_csv(category: AttackCategory, cfg: &ExperimentConfig) -> String {
    let mut out = String::from("panel,channel,predictor,trial,case,cycles\n");
    let panels = [
        (1, Channel::TimingWindow, PredictorKind::None),
        (2, Channel::TimingWindow, PredictorKind::Lvp),
        (3, Channel::Persistent, PredictorKind::None),
        (4, Channel::Persistent, PredictorKind::Lvp),
    ];
    for (panel, channel, kind) in panels {
        let Some(e) = try_evaluate(category, channel, kind, cfg) else {
            continue;
        };
        for (case, obs) in [("mapped", &e.mapped), ("unmapped", &e.unmapped)] {
            for (i, v) in obs.iter().enumerate() {
                let _ = writeln!(out, "{panel},{channel},{kind},{i},{case},{v}");
            }
        }
    }
    out
}

/// Table III as CSV: `category,channel,predictor,pvalue,rate_kbps,effective`.
#[must_use]
pub fn table_iii_csv(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("category,channel,predictor,pvalue,rate_kbps,effective\n");
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            for kind in [PredictorKind::None, PredictorKind::Lvp] {
                if let Some(e) = try_evaluate(cat, channel, kind, cfg) {
                    let _ = writeln!(
                        out,
                        "{cat},{channel},{kind},{:.6},{:.3},{}",
                        e.ttest.p_value,
                        e.rate_kbps,
                        e.succeeds()
                    );
                }
            }
        }
    }
    out
}

/// The §VI-B window sweeps as CSV: `category,window,pvalue`.
#[must_use]
pub fn window_sweep_csv(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("category,window,pvalue\n");
    for (cat, windows) in [
        (AttackCategory::TrainTest, &[1u64, 2, 3, 4, 5][..]),
        (AttackCategory::TestHit, &[1u64, 3, 5, 7, 8, 9, 10, 11][..]),
    ] {
        for (s, p) in window_sweep(cat, Channel::TimingWindow, PredictorKind::Lvp, windows, cfg) {
            let _ = writeln!(out, "{cat},{s},{p:.6}");
        }
    }
    out
}

/// Figure 7 data: `iteration,e_bit,cycles`.
#[must_use]
pub fn figure_7_csv(bits: usize, seed: u64) -> String {
    let mut exponent = Mpi::one();
    for i in 0..bits.saturating_sub(1) {
        exponent = exponent.shl_bits(1);
        if (i * 7 + 3) % 5 < 2 {
            exponent = exponent.add(&Mpi::one());
        }
    }
    let r = leak_exponent(&exponent, &LeakConfig { seed, ..LeakConfig::default() });
    let mut out = String::from("iteration,e_bit,cycles\n");
    for (i, (&bit, &obs)) in r.true_bits.iter().zip(&r.observations).enumerate() {
        let _ = writeln!(out, "{i},{},{obs}", u8::from(bit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsec::experiment::evaluate;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { trials: 6, ..ExperimentConfig::default() }
    }

    #[test]
    fn distribution_csv_shape() {
        let e = evaluate(
            AttackCategory::FillUp,
            Channel::TimingWindow,
            PredictorKind::Lvp,
            &cfg(),
        );
        let csv = distribution_csv(&e);
        assert!(csv.starts_with("trial,case,cycles\n"));
        // Header + 6 mapped + 6 unmapped.
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.contains(",mapped,"));
        assert!(csv.contains(",unmapped,"));
    }

    #[test]
    fn table_csv_contains_every_supported_cell() {
        let csv = table_iii_csv(&cfg());
        // 6 timing-window × 2 predictors + 3 persistent × 2 predictors.
        assert_eq!(csv.lines().count(), 1 + 12 + 6);
        assert!(csv.contains("Spill Over,timing-window,LVP"));
        assert!(!csv.contains("Spill Over,persistent"));
    }

    #[test]
    fn sweep_csv_rows() {
        let csv = window_sweep_csv(&cfg());
        assert_eq!(csv.lines().count(), 1 + 5 + 8);
        assert!(csv.contains("Train + Test,3,"));
        assert!(csv.contains("Test + Hit,9,"));
    }

    #[test]
    fn figure7_csv_rows() {
        let csv = figure_7_csv(8, 1);
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.starts_with("iteration,e_bit,cycles\n"));
    }
}
