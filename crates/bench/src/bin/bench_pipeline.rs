//! `bench_pipeline` — run the pipeline-executor workload matrix and emit
//! the machine-readable `BENCH_pipeline.json` performance baseline.
//!
//! ```text
//! bench_pipeline                         # full matrix -> BENCH_pipeline.json
//! bench_pipeline --quick                 # CI-sized matrix
//! bench_pipeline --out FILE              # write elsewhere
//! bench_pipeline --baseline FILE         # embed FILE as "before" + speedups
//! bench_pipeline --check FILE            # compare against FILE: fail on
//!                                        #   cycle drift or a >2x slowdown
//! bench_pipeline --check FILE --max-slowdown 3
//! bench_pipeline --deadline 300          # budget the whole matrix
//! bench_pipeline --strict                # escalate warnings to failures
//! bench_pipeline --traced                # run with event tracing on; the
//!                                        #   --check gate then bounds the
//!                                        #   tracing overhead
//! ```
//!
//! Simulated cycle counts are bit-deterministic; `--check` therefore
//! treats *any* cycle drift as an error (the scheduler must stay
//! cycle-exact) and only tolerates wall-clock noise up to the slowdown
//! factor.
//!
//! Unlike `repro`, this bin drives the executor directly rather than
//! through the campaign engine, so `--deadline` is a *whole-matrix*
//! wall budget checked after the sweep (an overrun warns, or fails the
//! run under `--strict`) — it cannot cancel a workload mid-simulation.
//! For cooperative per-job cancellation use `repro --deadline`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use vpsim_bench::pipeline_bench::{
    check_against, parse_cells, render, run_matrix, run_matrix_traced, to_json,
};

#[derive(Debug, Default)]
struct Args {
    quick: bool,
    traced: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    check: Option<PathBuf>,
    max_slowdown: f64,
    deadline: Option<Duration>,
    strict: bool,
}

fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        max_slowdown: 2.0,
        ..Args::default()
    };
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--traced" => args.traced = true,
            "--out" => args.out = Some(PathBuf::from(value("--out", &mut it)?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline", &mut it)?)),
            "--check" => args.check = Some(PathBuf::from(value("--check", &mut it)?)),
            "--max-slowdown" => {
                let v = value("--max-slowdown", &mut it)?;
                args.max_slowdown = v
                    .parse()
                    .map_err(|_| format!("--max-slowdown expects a number, got `{v}`"))?;
                if args.max_slowdown < 1.0 {
                    return Err("--max-slowdown must be >= 1".to_owned());
                }
            }
            "--deadline" => {
                let v = value("--deadline", &mut it)?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--deadline expects whole seconds, got `{v}`"))?;
                if secs == 0 {
                    return Err("--deadline must be positive".to_owned());
                }
                args.deadline = Some(Duration::from_secs(secs));
            }
            "--strict" => args.strict = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_pipeline [--quick] [--traced] [--out FILE] [--baseline FILE] \
                 [--check FILE] [--max-slowdown X] [--deadline SECS] [--strict]"
            );
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let report = if args.traced {
        run_matrix_traced(args.quick)
    } else {
        run_matrix(args.quick)
    };
    print!("{}", render(&report));

    if let Some(budget) = args.deadline {
        let elapsed = started.elapsed();
        if elapsed > budget {
            eprintln!(
                "deadline: matrix took {elapsed:?}, over the {budget:?} budget{}",
                if args.strict { "" } else { " (warning)" }
            );
            if args.strict {
                return ExitCode::FAILURE;
            }
        }
    }
    if args.strict {
        let degenerate: Vec<&str> = report
            .cells
            .iter()
            .filter(|c| c.cycles == 0 || c.wall_ns == 0)
            .map(|c| c.workload.as_str())
            .collect();
        if !degenerate.is_empty() {
            eprintln!(
                "strict: {} cell(s) produced degenerate measurements: {}",
                degenerate.len(),
                degenerate.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match check_against(&report, &baseline, args.max_slowdown) {
            Ok(()) => {
                println!(
                    "check: {} cells within {}x of {}",
                    report.cells.len(),
                    args.max_slowdown,
                    path.display()
                );
            }
            Err(problems) => {
                eprintln!("perf check FAILED against {}:\n{problems}", path.display());
                return ExitCode::FAILURE;
            }
        }
        // --check is read-only: never overwrite the committed baseline.
        return ExitCode::SUCCESS;
    }

    let before = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => {
                // Re-hydrate only what the report embeds: cells.
                let cells = parse_cells(&s);
                if cells.is_empty() {
                    eprintln!("error: baseline {} contains no cells", path.display());
                    return ExitCode::FAILURE;
                }
                Some(s)
            }
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let json = match &before {
        Some(b) => {
            let before_report = vpsim_bench::pipeline_bench::report_from_json(b);
            to_json(&report, Some(&before_report))
        }
        None => to_json(&report, None),
    };
    let out = args
        .out
        .unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_supervision_flags() {
        let a = parse(&["--quick", "--deadline", "300", "--strict"]).unwrap();
        assert!(a.quick);
        assert!(a.strict);
        assert_eq!(a.deadline, Some(Duration::from_secs(300)));
        assert!(!parse(&["--quick"]).unwrap().strict);
    }

    #[test]
    fn parses_traced_flag() {
        assert!(parse(&["--quick", "--traced"]).unwrap().traced);
        assert!(!parse(&["--quick"]).unwrap().traced);
    }

    #[test]
    fn rejects_bad_deadlines() {
        assert!(parse(&["--deadline", "0"]).is_err());
        assert!(parse(&["--deadline", "soon"]).is_err());
        assert!(parse(&["--deadline"]).is_err());
    }
}
