//! `bench_chaos` — run the robustness sweep (attack accuracy under the
//! deterministic fault/noise-injection plane) and emit `BENCH_chaos.json`.
//!
//! ```text
//! bench_chaos                        # full sweep -> BENCH_chaos.json
//! bench_chaos --quick                # CI-sized sweep
//! bench_chaos --out FILE             # write elsewhere
//! bench_chaos --check FILE           # compare against FILE: the sweep is
//!                                    #   fully deterministic, so any cell
//!                                    #   drift fails the check
//! bench_chaos --deadline 600         # budget the whole sweep
//! bench_chaos --strict               # escalate warnings to failures
//! ```
//!
//! `--check` is read-only and never rewrites the committed baseline.
//!
//! This bin drives the covert channel directly (no campaign engine), so
//! `--deadline` is a *whole-sweep* wall budget checked after the run —
//! an overrun warns, or fails under `--strict`. `--strict` also rejects
//! degenerate cells (zero bits transmitted). For cooperative per-job
//! cancellation use `repro --deadline`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use vpsim_bench::chaos_bench::{check_against, render, run_sweep, to_json};

#[derive(Debug, Default)]
struct Args {
    quick: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    deadline: Option<Duration>,
    strict: bool,
}

fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(PathBuf::from(value("--out", &mut it)?)),
            "--check" => args.check = Some(PathBuf::from(value("--check", &mut it)?)),
            "--deadline" => {
                let v = value("--deadline", &mut it)?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--deadline expects whole seconds, got `{v}`"))?;
                if secs == 0 {
                    return Err("--deadline must be positive".to_owned());
                }
                args.deadline = Some(Duration::from_secs(secs));
            }
            "--strict" => args.strict = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_chaos [--quick] [--out FILE] [--check FILE] \
                 [--deadline SECS] [--strict]"
            );
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let report = run_sweep(args.quick);
    print!("{}", render(&report));

    if let Some(budget) = args.deadline {
        let elapsed = started.elapsed();
        if elapsed > budget {
            eprintln!(
                "deadline: sweep took {elapsed:?}, over the {budget:?} budget{}",
                if args.strict { "" } else { " (warning)" }
            );
            if args.strict {
                return ExitCode::FAILURE;
            }
        }
    }
    if args.strict {
        let degenerate: Vec<&str> = report
            .cells
            .iter()
            .filter(|c| c.bits == 0)
            .map(|c| c.variant.as_str())
            .collect();
        if !degenerate.is_empty() {
            eprintln!(
                "strict: {} cell(s) transmitted zero bits: {}",
                degenerate.len(),
                degenerate.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match check_against(&report, &baseline) {
            Ok(()) => {
                println!(
                    "check: {} cells bit-identical to {}",
                    report.cells.len(),
                    path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(problems) => {
                eprintln!("chaos check FAILED against {}:\n{problems}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let out = args.out.unwrap_or_else(|| {
        PathBuf::from(if args.quick {
            "BENCH_chaos.quick.json"
        } else {
            "BENCH_chaos.json"
        })
    });
    if let Err(e) = std::fs::write(&out, to_json(&report)) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_the_flag_set() {
        let a = parse(&["--quick", "--out", "x.json"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.out, Some(PathBuf::from("x.json")));
        let a = parse(&["--check", "b.json"]).unwrap();
        assert_eq!(a.check, Some(PathBuf::from("b.json")));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--check"]).is_err());
    }

    #[test]
    fn parses_supervision_flags() {
        let a = parse(&["--strict", "--deadline", "600"]).unwrap();
        assert!(a.strict);
        assert_eq!(a.deadline, Some(Duration::from_secs(600)));
        assert!(parse(&["--deadline", "0"]).is_err());
        assert!(parse(&["--deadline", "x"]).is_err());
    }
}
