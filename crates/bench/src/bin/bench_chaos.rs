//! `bench_chaos` — run the robustness sweep (attack accuracy under the
//! deterministic fault/noise-injection plane) and emit `BENCH_chaos.json`.
//!
//! ```text
//! bench_chaos                        # full sweep -> BENCH_chaos.json
//! bench_chaos --quick                # CI-sized sweep
//! bench_chaos --out FILE             # write elsewhere
//! bench_chaos --check FILE           # compare against FILE: the sweep is
//!                                    #   fully deterministic, so any cell
//!                                    #   drift fails the check
//! ```
//!
//! `--check` is read-only and never rewrites the committed baseline.

use std::path::PathBuf;
use std::process::ExitCode;

use vpsim_bench::chaos_bench::{check_against, render, run_sweep, to_json};

#[derive(Debug, Default)]
struct Args {
    quick: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(PathBuf::from(value("--out", &mut it)?)),
            "--check" => args.check = Some(PathBuf::from(value("--check", &mut it)?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: bench_chaos [--quick] [--out FILE] [--check FILE]");
            return ExitCode::FAILURE;
        }
    };
    let report = run_sweep(args.quick);
    print!("{}", render(&report));

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match check_against(&report, &baseline) {
            Ok(()) => {
                println!(
                    "check: {} cells bit-identical to {}",
                    report.cells.len(),
                    path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(problems) => {
                eprintln!("chaos check FAILED against {}:\n{problems}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let out = args.out.unwrap_or_else(|| {
        PathBuf::from(if args.quick {
            "BENCH_chaos.quick.json"
        } else {
            "BENCH_chaos.json"
        })
    });
    if let Err(e) = std::fs::write(&out, to_json(&report)) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_the_flag_set() {
        let a = parse(&["--quick", "--out", "x.json"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.out, Some(PathBuf::from("x.json")));
        let a = parse(&["--check", "b.json"]).unwrap();
        assert_eq!(a.check, Some(PathBuf::from("b.json")));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--check"]).is_err());
    }
}
