//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all                 # everything (default 100 trials)
//! repro --figure 5            # one figure (2, 3, 4, 5, 7, 8)
//! repro --table 2             # one table (1, 2, 3)
//! repro --defenses            # §VI-B defense evaluation
//! repro --ablations           # design-choice ablations
//! repro --trials 30 --all     # trade precision for speed
//! ```

use std::process::ExitCode;

use vpsim_bench::reports;

struct Args {
    trials: usize,
    items: Vec<Item>,
    csv_dir: Option<std::path::PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Table(u32),
    Figure(u32),
    Defenses,
    Ablations,
    Performance,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--trials N] [--csv DIR] (--all | --table {{1|2|3}} | --figure {{2|3|4|5|7|8}} | --defenses | --ablations | --performance)..."
    );
    ExitCode::FAILURE
}

fn parse() -> Result<Args, ()> {
    let mut args = Args { trials: 100, items: Vec::new(), csv_dir: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trials" => {
                args.trials = it.next().ok_or(())?.parse().map_err(|_| ())?;
            }
            "--csv" => {
                args.csv_dir = Some(std::path::PathBuf::from(it.next().ok_or(())?));
            }
            "--table" => {
                args.items.push(Item::Table(it.next().ok_or(())?.parse().map_err(|_| ())?));
            }
            "--figure" => {
                args.items.push(Item::Figure(it.next().ok_or(())?.parse().map_err(|_| ())?));
            }
            "--defenses" => args.items.push(Item::Defenses),
            "--ablations" => args.items.push(Item::Ablations),
            "--performance" => args.items.push(Item::Performance),
            "--all" => {
                args.items.extend([
                    Item::Table(1),
                    Item::Table(2),
                    Item::Figure(2),
                    Item::Figure(3),
                    Item::Figure(4),
                    Item::Figure(5),
                    Item::Figure(7),
                    Item::Figure(8),
                    Item::Table(3),
                    Item::Defenses,
                    Item::Ablations,
                    Item::Performance,
                ]);
            }
            _ => return Err(()),
        }
    }
    if args.items.is_empty() && args.csv_dir.is_none() {
        return Err(());
    }
    Ok(args)
}

fn write_csvs(dir: &std::path::Path, trials: usize) -> std::io::Result<()> {
    use vpsec::attacks::AttackCategory;
    use vpsim_bench::export;
    std::fs::create_dir_all(dir)?;
    let cfg = vpsim_bench::reports::config(trials);
    let files = [
        ("fig5_train_test.csv", export::figure_distributions_csv(AttackCategory::TrainTest, &cfg)),
        ("fig8_test_hit.csv", export::figure_distributions_csv(AttackCategory::TestHit, &cfg)),
        ("table3.csv", export::table_iii_csv(&cfg)),
        ("defense_window_sweep.csv", export::window_sweep_csv(&cfg)),
        ("fig7_rsa.csv", export::figure_7_csv(60, 0x965)),
    ];
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let Ok(args) = parse() else { return usage() };
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = write_csvs(dir, args.trials) {
            eprintln!("csv export failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    for item in &args.items {
        let report = match item {
            Item::Table(1) => reports::table_i(),
            Item::Table(2) => reports::table_ii(),
            Item::Table(3) => reports::table_iii(args.trials),
            Item::Figure(2) => reports::figure_2(),
            Item::Figure(3) => reports::figure_3(args.trials.min(10)),
            Item::Figure(4) => reports::figure_4(args.trials.min(10)),
            Item::Figure(5) => reports::figure_5(args.trials),
            Item::Figure(7) => reports::figure_7(60, (args.trials / 10).max(1)),
            Item::Figure(8) => reports::figure_8(args.trials),
            Item::Defenses => reports::defense_report(args.trials),
            Item::Ablations => reports::ablation_report(args.trials),
            Item::Performance => vpsim_bench::workloads::performance_report(),
            Item::Table(n) => {
                eprintln!("unknown table {n}");
                return usage();
            }
            Item::Figure(n) => {
                eprintln!("unknown figure {n} (Figure 1 is the simulator itself; Figure 6 is the victim in vpsim-crypto)");
                return usage();
            }
        };
        println!("{}", "=".repeat(78));
        println!("{report}");
    }
    ExitCode::SUCCESS
}
