//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all                      # everything (default 100 trials)
//! repro --figure 5                 # one figure (2, 3, 4, 5, 7, 8)
//! repro --table 2                  # one table (1, 2, 3)
//! repro --defenses                 # §VI-B defense evaluation
//! repro --ablations                # design-choice ablations
//! repro --trials 30 --all          # trade precision for speed
//! repro --table 3 --jobs 8         # shard trials across 8 workers
//! repro --all --jobs 0             # jobs 0 = all available cores
//! repro --table 3 --resume out/    # record/skip finished jobs in out/
//! repro --bench                    # quick executor-throughput matrix
//! repro --chaos 2                  # robustness sweep at noise level 2
//! repro --table 3 --deadline 120   # hard-cancel any job past 120 s
//! repro --all --strict             # exit nonzero on any degraded cell
//! repro --trace out.jsonl          # deterministic event-trace dump
//! ```
//!
//! Serve-plane subcommands (campaign-as-a-service):
//!
//! ```text
//! repro serve --port 0 --state dir   # run the vpsim-serve daemon
//! repro run --spec f --isolate process --workers 4
//!                                    # run one spec locally, printing
//!                                    # canonical result lines; process
//!                                    # isolation contains worker crashes
//! repro submit --addr H:P --spec f   # POST a campaign spec
//! repro watch --addr H:P --id 1      # stream results as JSONL
//! repro query --addr H:P [--id 1]    # progress / campaign list
//! repro cancel --addr H:P --id 1     # cooperative cancellation
//! repro shutdown --addr H:P          # graceful daemon stop
//! ```
//!
//! `repro --worker-loop` (dispatched before all other parsing) turns
//! the process into a fleet worker for the process-isolated backend.
//!
//! Evaluations run through the `vpsim-harness` campaign engine: results
//! are bitwise-identical for every `--jobs` value, and a campaign killed
//! half-way can be rerun with the same `--resume DIR` to skip every job
//! already recorded there.

use std::process::ExitCode;
use std::sync::Arc;

use vpsim_bench::reports;
use vpsim_harness::{Exec, RunHealth};

#[derive(Debug)]
struct Args {
    trials: usize,
    items: Vec<Item>,
    csv_dir: Option<std::path::PathBuf>,
    /// Dump deterministic per-trial event traces (JSONL) here and print
    /// the leakage-attribution summary.
    trace: Option<std::path::PathBuf>,
    exec: Exec,
    /// Exit nonzero when any campaign ran degraded (quarantined or
    /// panicked cells, deadline failures, torn manifest lines, injected
    /// or real I/O faults).
    strict: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Table(u32),
    Figure(u32),
    Defenses,
    Ablations,
    Performance,
    Bench,
    Chaos(u8),
}

impl std::fmt::Display for Item {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Item::Table(n) => write!(f, "--table {n}"),
            Item::Figure(n) => write!(f, "--figure {n}"),
            Item::Defenses => write!(f, "--defenses"),
            Item::Ablations => write!(f, "--ablations"),
            Item::Performance => write!(f, "--performance"),
            Item::Bench => write!(f, "--bench"),
            Item::Chaos(l) => write!(f, "--chaos {l}"),
        }
    }
}

const VALID_TABLES: [u32; 3] = [1, 2, 3];
const VALID_FIGURES: [u32; 6] = [2, 3, 4, 5, 7, 8];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--trials N] [--jobs N] [--resume DIR] [--progress] [--csv DIR] \
         [--trace FILE] [--deadline SECS] [--strict] \
         (--all | --table {{1|2|3}} | --figure {{2|3|4|5|7|8}} | --defenses | --ablations | \
         --performance | --bench | --chaos {{0..4}})..."
    );
    ExitCode::FAILURE
}

/// Parse the argument list (without the program name). All validation
/// happens here so errors name the offending argument before any
/// simulation starts.
fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        trials: 100,
        items: Vec::new(),
        csv_dir: None,
        trace: None,
        exec: Exec::default(),
        strict: false,
    };
    let mut jobs_explicit = false;
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let push = |items: &mut Vec<Item>, item: Item| -> Result<(), String> {
        if items.contains(&item) {
            return Err(format!("duplicate item: {item}"));
        }
        items.push(item);
        Ok(())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trials" => {
                let v = value("--trials", &mut it)?;
                args.trials = v
                    .parse()
                    .map_err(|_| format!("--trials expects a positive integer, got `{v}`"))?;
                if args.trials == 0 {
                    return Err("--trials 0 would evaluate empty distributions".to_owned());
                }
            }
            "--jobs" => {
                let v = value("--jobs", &mut it)?;
                args.exec.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects an integer (0 = all cores), got `{v}`"))?;
                jobs_explicit = true;
            }
            "--resume" => {
                args.exec.resume = Some(std::path::PathBuf::from(value("--resume", &mut it)?));
            }
            "--progress" => args.exec.progress = true,
            "--deadline" => {
                let v = value("--deadline", &mut it)?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--deadline expects whole seconds, got `{v}`"))?;
                if secs == 0 {
                    return Err("--deadline 0 would cancel every job at its first \
                                scheduler checkpoint"
                        .to_owned());
                }
                args.exec.job_deadline = Some(std::time::Duration::from_secs(secs));
            }
            "--strict" => args.strict = true,
            "--csv" => {
                args.csv_dir = Some(std::path::PathBuf::from(value("--csv", &mut it)?));
            }
            "--trace" => {
                args.trace = Some(std::path::PathBuf::from(value("--trace", &mut it)?));
            }
            "--table" => {
                let v = value("--table", &mut it)?;
                let n = v
                    .parse()
                    .map_err(|_| format!("--table expects a number, got `{v}`"))?;
                if !VALID_TABLES.contains(&n) {
                    return Err(format!("unknown table {n}; the paper has tables 1-3"));
                }
                push(&mut args.items, Item::Table(n))?;
            }
            "--figure" => {
                let v = value("--figure", &mut it)?;
                let n = v
                    .parse()
                    .map_err(|_| format!("--figure expects a number, got `{v}`"))?;
                if !VALID_FIGURES.contains(&n) {
                    return Err(format!(
                        "unknown figure {n} (Figure 1 is the simulator itself; \
                         Figure 6 is the victim in vpsim-crypto)"
                    ));
                }
                push(&mut args.items, Item::Figure(n))?;
            }
            "--defenses" => push(&mut args.items, Item::Defenses)?,
            "--ablations" => push(&mut args.items, Item::Ablations)?,
            "--performance" => push(&mut args.items, Item::Performance)?,
            "--bench" => push(&mut args.items, Item::Bench)?,
            "--chaos" => {
                let v = value("--chaos", &mut it)?;
                let max = vpsec::chaos::ChaosConfig::NUM_LEVELS - 1;
                let l: u8 = v
                    .parse()
                    .map_err(|_| format!("--chaos expects a level 0..={max}, got `{v}`"))?;
                if l > max {
                    return Err(format!("unknown chaos level {l}; levels are 0..={max}"));
                }
                push(&mut args.items, Item::Chaos(l))?;
            }
            "--all" => {
                for item in [
                    Item::Table(1),
                    Item::Table(2),
                    Item::Figure(2),
                    Item::Figure(3),
                    Item::Figure(4),
                    Item::Figure(5),
                    Item::Figure(7),
                    Item::Figure(8),
                    Item::Table(3),
                    Item::Defenses,
                    Item::Ablations,
                    Item::Performance,
                    Item::Bench,
                ] {
                    push(&mut args.items, item)?;
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.items.is_empty() && args.csv_dir.is_none() && args.trace.is_none() {
        return Err(
            "nothing to do: pass --all, an item flag, --csv DIR, or --trace FILE".to_owned(),
        );
    }
    if args.exec.resume.is_some() && !jobs_explicit {
        // A resumable run is usually a long one; default to all cores.
        args.exec.jobs = 0;
    }
    Ok(args)
}

fn write_csvs(dir: &std::path::Path, trials: usize, exec: &Exec) -> std::io::Result<()> {
    use vpsec::attacks::AttackCategory;
    use vpsim_bench::export;
    std::fs::create_dir_all(dir)?;
    let cfg = vpsim_bench::reports::config(trials);
    let files = [
        (
            "fig5_train_test.csv",
            export::figure_distributions_csv(AttackCategory::TrainTest, &cfg, exec),
        ),
        (
            "fig8_test_hit.csv",
            export::figure_distributions_csv(AttackCategory::TestHit, &cfg, exec),
        ),
        ("table3.csv", export::table_iii_csv(&cfg, exec)),
        (
            "defense_window_sweep.csv",
            export::window_sweep_csv(&cfg, exec),
        ),
        ("fig7_rsa.csv", export::figure_7_csv(60, 0x965)),
    ];
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Run `f`, converting a panic into the panic message. The report and
/// export functions panic on campaign-level errors (a manifest recorded
/// by a different campaign, an unwritable resume directory); at the CLI
/// surface those are user errors, not bugs, so they are reported as a
/// one-line `error:` instead of a backtrace. The default panic hook is
/// suspended for the duration so nothing double-prints.
fn trap<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "internal error".to_owned())
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Worker-loop mode: the process backend re-execs this binary with
    // `--worker-loop` as a fleet worker. Dispatch before any other
    // parsing — the worker speaks frames on stdin/stdout, nothing else.
    if argv.first().is_some_and(|a| a == "--worker-loop") {
        return match vpsim_harness::worker_loop() {
            0 => ExitCode::SUCCESS,
            code => ExitCode::from(u8::try_from(code).unwrap_or(1)),
        };
    }
    // Serve-plane subcommands (`repro serve ...`) dispatch before the
    // legacy flag parser; a first argument starting with `--` keeps the
    // original report-generation CLI unchanged.
    if argv
        .first()
        .is_some_and(|a| vpsim_bench::serve_cli::is_subcommand(a))
    {
        let run = vpsim_bench::serve_cli::parse_from(argv.clone())
            .and_then(|cmd| vpsim_bench::serve_cli::run(&cmd));
        return match run {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut args = match parse_from(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let health = Arc::new(RunHealth::default());
    if args.strict {
        args.exec.health = Some(Arc::clone(&health));
    }
    let args = args;
    if let Some(dir) = &args.csv_dir {
        match trap(|| write_csvs(dir, args.trials, &args.exec)) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("csv export failed: {e}");
                return ExitCode::FAILURE;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        // Trace dumps run the traced zoo sequentially regardless of
        // --jobs, so the file is byte-identical for every worker count.
        match trap(|| vpsim_bench::trace_dump::run(args.trials)) {
            Ok(dump) => {
                if let Err(e) = std::fs::write(path, &dump.jsonl) {
                    eprintln!("trace export failed: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
                println!("{}", "=".repeat(78));
                println!("{}", vpsim_bench::trace_dump::attribution_report(&dump));
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    for item in &args.items {
        let report = trap(|| match item {
            Item::Table(1) => reports::table_i(),
            Item::Table(2) => reports::table_ii(),
            Item::Table(3) => reports::table_iii(args.trials, &args.exec),
            Item::Figure(2) => reports::figure_2(),
            Item::Figure(3) => reports::figure_3(args.trials.min(10)),
            Item::Figure(4) => reports::figure_4(args.trials.min(10)),
            Item::Figure(5) => reports::figure_5(args.trials, &args.exec),
            Item::Figure(7) => reports::figure_7(60, (args.trials / 10).max(1)),
            Item::Figure(8) => reports::figure_8(args.trials, &args.exec),
            Item::Defenses => reports::defense_report(args.trials, &args.exec),
            Item::Ablations => reports::ablation_report(args.trials, &args.exec),
            Item::Performance => vpsim_bench::workloads::performance_report(),
            Item::Bench => {
                // The quick matrix: the full one is `bench_pipeline`'s job.
                let r = vpsim_bench::pipeline_bench::run_matrix(true);
                vpsim_bench::pipeline_bench::render(&r)
            }
            Item::Chaos(l) => {
                // One level of the quick robustness sweep; the full
                // all-levels report is `bench_chaos`'s job.
                let r = vpsim_bench::chaos_bench::run_sweep_levels(true, &[*l]);
                vpsim_bench::chaos_bench::render(&r)
            }
            Item::Table(n) | Item::Figure(n) => unreachable!("id {n} rejected at parse time"),
        });
        match report {
            Ok(report) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.strict && !health.is_clean() {
        eprintln!("strict: run degraded ({})", health.summary());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn minimal_invocations_parse() {
        let a = parse(&["--all"]).unwrap();
        assert_eq!(a.trials, 100);
        assert_eq!(a.items.len(), 13);
        assert!(a.items.contains(&Item::Bench));
        assert_eq!(a.exec.jobs, 1);

        let a = parse(&["--table", "3", "--trials", "30", "--jobs", "8"]).unwrap();
        assert_eq!(a.items, vec![Item::Table(3)]);
        assert_eq!(a.trials, 30);
        assert_eq!(a.exec.jobs, 8);
    }

    #[test]
    fn zero_trials_rejected() {
        let e = parse(&["--trials", "0", "--all"]).unwrap_err();
        assert!(e.contains("--trials 0"), "{e}");
    }

    #[test]
    fn garbage_values_name_the_flag() {
        assert!(parse(&["--trials", "many", "--all"])
            .unwrap_err()
            .contains("--trials"));
        assert!(parse(&["--jobs", "x", "--all"])
            .unwrap_err()
            .contains("--jobs"));
        assert!(parse(&["--table", "x"]).unwrap_err().contains("--table"));
    }

    #[test]
    fn unknown_ids_rejected_at_parse_time() {
        let e = parse(&["--table", "9"]).unwrap_err();
        assert!(e.contains("unknown table 9"), "{e}");
        let e = parse(&["--figure", "6"]).unwrap_err();
        assert!(e.contains("unknown figure 6"), "{e}");
        assert!(e.contains("vpsim-crypto"), "{e}");
    }

    #[test]
    fn chaos_levels_validated_at_parse_time() {
        let a = parse(&["--chaos", "2"]).unwrap();
        assert_eq!(a.items, vec![Item::Chaos(2)]);
        let e = parse(&["--chaos", "9"]).unwrap_err();
        assert!(e.contains("unknown chaos level 9"), "{e}");
        let e = parse(&["--chaos", "loud"]).unwrap_err();
        assert!(e.contains("--chaos"), "{e}");
        assert!(parse(&["--chaos"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn duplicates_rejected() {
        let e = parse(&["--table", "3", "--table", "3"]).unwrap_err();
        assert!(e.contains("duplicate item: --table 3"), "{e}");
        let e = parse(&["--defenses", "--defenses"]).unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
        // --all after an explicit item that --all also contains.
        let e = parse(&["--figure", "5", "--all"]).unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
    }

    #[test]
    fn missing_values_rejected() {
        assert!(parse(&["--trials"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--all", "--resume"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn unknown_flags_rejected() {
        let e = parse(&["--frobnicate"]).unwrap_err();
        assert!(e.contains("`--frobnicate`"), "{e}");
    }

    #[test]
    fn empty_invocation_rejected() {
        let e = parse(&[]).unwrap_err();
        assert!(e.contains("nothing to do"), "{e}");
    }

    #[test]
    fn resume_defaults_to_all_cores() {
        let a = parse(&["--table", "3", "--resume", "out"]).unwrap();
        assert_eq!(a.exec.jobs, 0, "resume implies a long run; use all cores");
        let a = parse(&["--table", "3", "--resume", "out", "--jobs", "2"]).unwrap();
        assert_eq!(a.exec.jobs, 2, "explicit --jobs wins");
        assert_eq!(a.exec.resume.as_deref(), Some(std::path::Path::new("out")));
    }

    #[test]
    fn progress_flag_sets_exec() {
        let a = parse(&["--all", "--progress"]).unwrap();
        assert!(a.exec.progress);
    }

    #[test]
    fn deadline_flag_sets_hard_budget() {
        let a = parse(&["--table", "3", "--deadline", "120"]).unwrap();
        assert_eq!(
            a.exec.job_deadline,
            Some(std::time::Duration::from_secs(120))
        );
        let e = parse(&["--table", "3", "--deadline", "0"]).unwrap_err();
        assert!(e.contains("--deadline 0"), "{e}");
        let e = parse(&["--table", "3", "--deadline", "soon"]).unwrap_err();
        assert!(e.contains("--deadline"), "{e}");
    }

    #[test]
    fn trace_flag_is_a_standalone_action() {
        let a = parse(&["--trace", "out.jsonl"]).unwrap();
        assert!(a.items.is_empty());
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("out.jsonl")));
        let a = parse(&["--table", "3", "--trace", "t.jsonl"]).unwrap();
        assert_eq!(a.items, vec![Item::Table(3)]);
        assert!(a.trace.is_some());
        assert!(parse(&["--trace"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn strict_flag_parses() {
        let a = parse(&["--all", "--strict"]).unwrap();
        assert!(a.strict);
        assert!(!parse(&["--all"]).unwrap().strict);
    }
}
