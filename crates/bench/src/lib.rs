//! # vpsim-bench
//!
//! Report generators that regenerate **every table and figure** of the
//! paper's evaluation section. Each `figure_*`/`table_*` function runs
//! the underlying experiment and renders the same rows/series the paper
//! reports; the `repro` binary prints them, and the Criterion benches in
//! `benches/` time the underlying experiment kernels.
//!
//! Absolute cycle counts differ from the paper's gem5 testbed — the
//! *shape* is what reproduces: which configurations leak (red p-values),
//! which don't, and where the defense thresholds fall.

#![forbid(unsafe_code)]

pub mod chaos_bench;
pub mod export;
pub mod microbench;
pub mod pipeline_bench;
pub mod reports;
pub mod serve_cli;
pub mod trace_dump;
pub mod workloads;

pub use reports::*;
