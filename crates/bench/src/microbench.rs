//! A minimal wall-clock benchmark harness.
//!
//! The crates.io registry is not reachable from the build environment,
//! so the `benches/` targets cannot use criterion; this hand-rolled
//! replacement covers what they need — named groups, a configurable
//! sample count, and min/median/mean reporting — with `std::time`
//! only. Every bench target (`harness = false`) builds a [`BenchGroup`]
//! and calls [`BenchGroup::bench`] per kernel.

use std::time::{Duration, Instant};

/// A group of related benchmarks sharing a sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// A new group; default 10 samples per benchmark.
    #[must_use]
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_owned(),
            samples: 10,
        }
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut BenchGroup {
        assert!(samples >= 1, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Time `f` (`samples` runs after one untimed warmup) and print a
    /// `group/id  min ≤ median ≤ max  (mean)` line.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut BenchGroup {
        std::hint::black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let total: Duration = times.iter().sum();
        let mean = total / self.samples as u32;
        let median = times[times.len() / 2];
        println!(
            "bench {:<44} {:>11} ≤ {:>11} ≤ {:>11}  (mean {:>11}, {} samples)",
            format!("{}/{}", self.name, id),
            format_duration(times[0]),
            format_duration(median),
            format_duration(*times.last().expect("samples >= 1")),
            format_duration(mean),
            self.samples,
        );
        self
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_function_expected_number_of_times() {
        let mut calls = 0usize;
        BenchGroup::new("test")
            .sample_size(5)
            .bench("count", || calls += 1);
        // 5 samples + 1 warmup.
        assert_eq!(calls, 6);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
