//! Performance workloads: why anyone would build a value predictor.
//!
//! The paper's motivation (§I) cites value-predictor speedups of 4.8%
//! (ref. \[11\]) to 11.2% (ref. \[9\]) on real workloads. This module reproduces the
//! *shape* of that claim on synthetic kernels:
//!
//! * [`pointer_chase`] — a permuted linked-list traversal whose loads
//!   form a serial dependence chain of L1 misses: the best case for
//!   value prediction (a correct prediction breaks the chain);
//! * [`constant_table`] — repeated reduction over a table of constants
//!   that misses the L1 (value-predictable, but already overlapped by
//!   the out-of-order core, so gains are modest);
//! * [`random_values`] — the adversarial case: values change every
//!   visit, so predictions are wrong and squashes cost cycles; the
//!   confidence mechanism is what keeps the loss bounded.
//!
//! [`speedup_table`] runs each kernel against each predictor and
//! reports `cycles(no VP) / cycles(VP)`.

use vpsim_isa::{Program, ProgramBuilder, Reg};
use vpsim_mem::MemoryConfig;
use vpsim_pipeline::{CoreConfig, Machine};
use vpsim_predictor::{
    Fcm, FcmConfig, Lvp, LvpConfig, NoPredictor, Stride, StrideConfig, ValuePredictor, Vtage,
    VtageConfig,
};

/// Base address of workload data.
const HEAP: u64 = 0x40_0000;

/// A ready-to-run workload: program + initial memory image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// A short name for reports.
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Initial memory contents.
    pub memory: Vec<(u64, u64)>,
}

/// A permuted linked-list traversal: `nodes` cache-line-spaced nodes in
/// one cycle, traversed `passes` times. The list exceeds the L1, so
/// every hop is at least an L2 access — and each hop's address depends
/// on the previous load's value.
#[must_use]
pub fn pointer_chase(nodes: u64, passes: u64) -> Workload {
    assert!(nodes >= 2, "need at least two nodes");
    // A fixed permutation cycle over node slots via a multiplicative
    // step coprime to `nodes` (use an odd step on a power-of-two count).
    let step = (nodes / 2) | 1;
    let addr_of = |slot: u64| HEAP + (slot % nodes) * 64;
    let mut memory = Vec::with_capacity(nodes as usize);
    let mut slot = 0u64;
    for _ in 0..nodes {
        let next = (slot + step) % nodes;
        memory.push((addr_of(slot), addr_of(next)));
        slot = next;
    }
    let hops = nodes * passes;
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, addr_of(0)).li(Reg::R2, 0).li(Reg::R3, hops);
    b.label("hop").unwrap();
    b.load(Reg::R1, Reg::R1, 0) // serial dependence: addr ← loaded value
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "hop")
        .halt();
    Workload {
        name: "pointer_chase",
        program: b.build().expect("valid workload"),
        memory,
    }
}

/// Repeated sum over `entries` constant table slots (64-byte spaced so
/// each is its own line), `passes` times.
#[must_use]
pub fn constant_table(entries: u64, passes: u64) -> Workload {
    let memory: Vec<(u64, u64)> = (0..entries)
        .map(|i| (HEAP + i * 64, i.wrapping_mul(0x5851_f42d) >> 32))
        .collect();
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, HEAP)
        .li(Reg::R2, 0) // pass counter
        .li(Reg::R3, passes)
        .li(Reg::R8, 64)
        .li(Reg::R10, 0); // accumulator
    b.label("pass").unwrap();
    b.li(Reg::R4, 0).li(Reg::R5, entries).li(Reg::R6, HEAP);
    b.label("elem").unwrap();
    b.load(Reg::R7, Reg::R6, 0)
        .alu(vpsim_isa::AluOp::Add, Reg::R10, Reg::R10, Reg::R7)
        .alu(vpsim_isa::AluOp::Add, Reg::R6, Reg::R6, Reg::R8)
        .addi(Reg::R4, Reg::R4, 1)
        .blt(Reg::R4, Reg::R5, "elem")
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "pass")
        .halt();
    Workload {
        name: "constant_table",
        program: b.build().expect("valid workload"),
        memory,
    }
}

/// The adversarial kernel: a loop that loads a counter it increments
/// through memory every iteration, flushing first so the load always
/// misses and the trained prediction is always stale.
#[must_use]
pub fn random_values(iterations: u64) -> Workload {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, HEAP)
        .li(Reg::R2, 0)
        .li(Reg::R3, iterations)
        .li(Reg::R10, 0);
    b.label("top").unwrap();
    b.flush(Reg::R1, 0)
        .fence()
        .load(Reg::R7, Reg::R1, 0)
        .addi(Reg::R7, Reg::R7, 0x0001_2345)
        .store(Reg::R7, Reg::R1, 0)
        .alu(vpsim_isa::AluOp::Add, Reg::R10, Reg::R10, Reg::R7)
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "top")
        .halt();
    Workload {
        name: "random_values",
        program: b.build().expect("valid workload"),
        memory: vec![(HEAP, 1)],
    }
}

/// The default kernel set used by the report and bench.
#[must_use]
pub fn standard_workloads() -> Vec<Workload> {
    vec![
        pointer_chase(1024, 8),
        constant_table(1024, 8),
        random_values(256),
    ]
}

fn build(kind: &str) -> Box<dyn ValuePredictor> {
    // Performance predictors index by *data address* (paper §II: both
    // PC- and data-address-based designs exist): a pointer chase loads a
    // different pointer from one static PC each hop, so per-PC last
    // values never gain confidence, while per-address values are
    // constants. The attack experiments use the PC-indexed flavour, as
    // in the paper's PoCs.
    let index = vpsim_predictor::IndexConfig {
        kind: vpsim_predictor::IndexKind::DataAddress,
        ..vpsim_predictor::IndexConfig::default()
    };
    // Capacity must cover the working set of distinct load addresses
    // (1024-node lists), or entries churn before reaching confidence.
    match kind {
        "no VP" => Box::new(NoPredictor::new()),
        "LVP" => Box::new(Lvp::new(LvpConfig {
            index,
            capacity: 8192,
            ..LvpConfig::default()
        })),
        "stride" => Box::new(Stride::new(StrideConfig {
            index,
            capacity: 8192,
            ..StrideConfig::default()
        })),
        "VTAGE" => Box::new(Vtage::new(VtageConfig {
            index,
            log2_entries: 13,
            ..VtageConfig::default()
        })),
        "FCM" => Box::new(Fcm::new(FcmConfig {
            index,
            l1_capacity: 8192,
            l2_capacity: 16384,
            ..FcmConfig::default()
        })),
        other => unreachable!("unknown predictor {other}"),
    }
}

/// Cycles to run `workload` with the named predictor.
#[must_use]
pub fn run_workload(workload: &Workload, predictor: &str) -> u64 {
    let mut m = Machine::new(
        CoreConfig::default(),
        MemoryConfig::deterministic(),
        build(predictor),
        0,
    );
    for (a, v) in &workload.memory {
        m.mem_mut().store_value(*a, *v);
    }
    m.run(0, &workload.program).expect("workload halts").cycles
}

/// `(workload, predictor, cycles, speedup-vs-no-VP)` for every pair.
#[must_use]
pub fn speedup_table() -> Vec<(String, String, u64, f64)> {
    let mut rows = Vec::new();
    for w in standard_workloads() {
        let baseline = run_workload(&w, "no VP");
        for kind in ["no VP", "LVP", "stride", "VTAGE", "FCM"] {
            let cycles = run_workload(&w, kind);
            rows.push((
                w.name.to_owned(),
                kind.to_owned(),
                cycles,
                baseline as f64 / cycles as f64,
            ));
        }
    }
    rows
}

/// Render the performance report.
#[must_use]
pub fn performance_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "Value-predictor performance (the paper's §I motivation: proposed\n\
         predictors gain 4.8%-11.2% on real workloads; here the shape on\n\
         synthetic kernels — dependent misses gain, adversarial loses little):\n\n",
    );
    let _ = writeln!(
        out,
        "  {:<16} {:<8} {:>12} {:>10}",
        "workload", "VP", "cycles", "speedup"
    );
    let mut last = String::new();
    for (w, kind, cycles, speedup) in speedup_table() {
        if w != last {
            let _ = writeln!(out);
            last.clone_from(&w);
        }
        let _ = writeln!(
            out,
            "  {:<16} {:<8} {:>12} {:>9.2}x",
            w, kind, cycles, speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_chase_is_correct_and_terminates() {
        let w = pointer_chase(64, 2);
        let c = run_workload(&w, "no VP");
        assert!(c > 0);
    }

    #[test]
    fn chase_visits_every_node() {
        // The permutation must form a single cycle covering all nodes.
        let w = pointer_chase(128, 1);
        let mut seen = std::collections::HashSet::new();
        let mut addr = HEAP;
        for _ in 0..128 {
            assert!(
                seen.insert(addr),
                "revisited {addr:#x} early: not a full cycle"
            );
            addr = w
                .memory
                .iter()
                .find(|(a, _)| *a == addr)
                .expect("node exists")
                .1;
        }
        assert_eq!(addr, HEAP, "cycle closes");
        assert_eq!(seen.len(), 128);
    }

    #[test]
    fn lvp_speeds_up_pointer_chase() {
        // The list must exceed the 32 KiB L1 (64-byte nodes → >512), or
        // every hop hits the L1 and a load-based VPS never engages.
        let w = pointer_chase(1024, 8);
        let base = run_workload(&w, "no VP");
        let lvp = run_workload(&w, "LVP");
        assert!(
            (lvp as f64) < (base as f64) * 0.95,
            "LVP should speed up the chase: {lvp} vs {base}"
        );
    }

    #[test]
    fn adversarial_workload_does_not_blow_up() {
        let w = random_values(64);
        let base = run_workload(&w, "no VP");
        let lvp = run_workload(&w, "LVP");
        // Confidence gating keeps the stale-prediction penalty small.
        assert!(
            (lvp as f64) < (base as f64) * 1.15,
            "LVP loss must stay bounded: {lvp} vs {base}"
        );
    }

    #[test]
    fn speedup_table_covers_all_pairs() {
        let t = speedup_table();
        assert_eq!(t.len(), 3 * 5);
        for (_, kind, _, speedup) in &t {
            if kind == "no VP" {
                assert!((speedup - 1.0).abs() < 1e-9);
            }
        }
    }
}
