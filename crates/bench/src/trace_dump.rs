//! Deterministic per-trial event-trace dumps (`repro --trace`).
//!
//! The dump runs a small fixed *traced zoo* — one cell per evaluated
//! channel — through [`CellPlan::run_pair_traced`], strictly
//! sequentially in `(cell, trial, arm)` order with a fresh bounded
//! [`RingRecorder`] per arm. Every seed is a pure function of the cell
//! coordinates and trial index, so the emitted JSONL is byte-identical
//! across runs, hosts, and `--jobs` settings; CI diffs two invocations
//! to prove it.
//!
//! Output format, one JSON object per line:
//!
//! ```text
//! {"type":"trace_header","cell":"...","trial":0,"arm":"mapped","seen":N,"dropped":N}
//! {"cycle":12,"kind":"predict",...}   // RingRecorder::to_jsonl lines
//! ...
//! ```
//!
//! The ring keeps the *tail* of each arm's trace; `dropped` in the
//! header records how many early events were cut, so consumers can tell
//! a complete trace from a truncated one.

use std::fmt::Write as _;

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{CellPlan, Channel, PredictorKind};
use vpsim_obs::{attribute, Attribution, RingRecorder};

use crate::reports::config;

/// Per-arm ring capacity. Deep enough to hold every event of a default
/// trial's transient phase; shallow enough that a full dump stays small.
pub const TRACE_RING_CAPACITY: usize = 512;

/// One traced zoo cell: a stable slug plus its plan.
struct TracedCell {
    name: &'static str,
    plan: CellPlan,
}

/// The traced zoo: the two paper-evaluated channels on the baseline LVP
/// attack cells. Small by design — the dump is a microscope, not a
/// campaign; the full matrix is the `table3` campaign's job.
fn traced_zoo(trials: usize) -> Vec<TracedCell> {
    let cfg = config(trials);
    let cells: [(&'static str, AttackCategory, Channel); 2] = [
        (
            "train_test/timing_window/lvp",
            AttackCategory::TrainTest,
            Channel::TimingWindow,
        ),
        (
            "test_hit/persistent/lvp",
            AttackCategory::TestHit,
            Channel::Persistent,
        ),
    ];
    cells
        .into_iter()
        .map(|(name, category, channel)| TracedCell {
            name,
            plan: CellPlan::new(category, channel, PredictorKind::Lvp, &cfg)
                .expect("traced zoo cells support their channels"),
        })
        .collect()
}

/// Attribution counters for one zoo cell, split by arm.
#[derive(Debug, Default, Clone, Copy)]
pub struct CellAttribution {
    /// Secret-mapped arm, summed over trials.
    pub mapped: Attribution,
    /// Unmapped arm, summed over trials.
    pub unmapped: Attribution,
}

/// A finished dump: the JSONL trace text plus the per-cell attribution
/// rows backing the leakage summary.
#[derive(Debug)]
pub struct TraceDump {
    /// One JSON object per line: headers interleaved with events.
    pub jsonl: String,
    /// `(cell name, attribution)` in zoo order.
    pub cells: Vec<(String, CellAttribution)>,
}

/// Run the traced zoo for `trials` paired trials and render the dump.
#[must_use]
pub fn run(trials: usize) -> TraceDump {
    let mut jsonl = String::new();
    let mut cells = Vec::new();
    for cell in traced_zoo(trials) {
        let mut attrib = CellAttribution::default();
        for t in 0..trials {
            let mut mapped = RingRecorder::new(TRACE_RING_CAPACITY);
            let mut unmapped = RingRecorder::new(TRACE_RING_CAPACITY);
            let _ = cell.plan.run_pair_traced(t, &mut mapped, &mut unmapped);
            attrib.mapped.merge(&attribute(mapped.events()));
            attrib.unmapped.merge(&attribute(unmapped.events()));
            for (arm, rec) in [("mapped", &mapped), ("unmapped", &unmapped)] {
                let _ = writeln!(
                    jsonl,
                    "{{\"type\":\"trace_header\",\"cell\":\"{}\",\"trial\":{t},\"arm\":\"{arm}\",\"seen\":{},\"dropped\":{}}}",
                    cell.name,
                    rec.seen(),
                    rec.dropped(),
                );
                jsonl.push_str(&rec.to_jsonl());
            }
        }
        cells.push((cell.name.to_string(), attrib));
    }
    TraceDump { jsonl, cells }
}

/// Render the leakage-attribution summary: per cell and arm, how many
/// events landed inside a transient window — the paper's leak surface.
#[must_use]
pub fn attribution_report(dump: &TraceDump) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Leakage attribution (events in transient windows)");
    let _ = writeln!(
        out,
        "  {:<40} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9} {:>6}",
        "cell/arm", "events", "windows", "squash", "transient", "trans.mem", "fills", "leak%"
    );
    for (name, attrib) in &dump.cells {
        for (arm, a) in [("mapped", &attrib.mapped), ("unmapped", &attrib.unmapped)] {
            let leak_pct = if a.events == 0 {
                0.0
            } else {
                100.0 * a.transient_events as f64 / a.events as f64
            };
            let _ = writeln!(
                out,
                "  {:<40} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9} {:>5.1}%",
                format!("{name}/{arm}"),
                a.events,
                a.windows,
                a.squashed_windows,
                a.transient_events,
                a.transient_mem_events,
                a.transient_fills,
                leak_pct,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_deterministic_and_well_formed() {
        let a = run(2);
        let b = run(2);
        assert_eq!(a.jsonl, b.jsonl, "trace dump must be byte-identical");
        assert!(!a.jsonl.is_empty());
        // 2 cells x 2 trials x 2 arms = 8 headers.
        let headers = a
            .jsonl
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"trace_header\""))
            .count();
        assert_eq!(headers, 8);
        for line in a.jsonl.lines() {
            let v = vpsim_json::parse(line).expect("every line is JSON");
            if line.starts_with("{\"type\":\"trace_header\"") {
                assert!(v.get("cell").is_some());
                assert!(v.get("seen").and_then(vpsim_json::Json::as_u64).is_some());
            } else {
                assert!(v.get("cycle").is_some(), "event line has a cycle stamp");
                assert!(v.get("kind").is_some(), "event line has a kind");
            }
        }
    }

    #[test]
    fn mapped_arm_attributes_transient_leakage() {
        let dump = run(3);
        assert_eq!(dump.cells.len(), 2);
        let (_, tt) = &dump.cells[0];
        // The Train+Test mapped arm predicts and leaks through the
        // transient window; its trace must attribute events there.
        assert!(tt.mapped.windows > 0, "mapped arm opens windows");
        assert!(tt.mapped.transient_events > 0);
        let report = attribution_report(&dump);
        assert!(report.contains("train_test/timing_window/lvp/mapped"));
        assert!(report.contains("test_hit/persistent/lvp/unmapped"));
    }
}
