//! Table/figure report generators.
//!
//! Function names map one-to-one onto the paper's evaluation artefacts:
//!
//! | paper | function |
//! |---|---|
//! | Table I (actions) | [`table_i`] |
//! | Table II (12 attack variants) | [`table_ii`] |
//! | Table III (attack evaluation) | [`table_iii`] |
//! | Figure 2 (channel taxonomy) | [`figure_2`] |
//! | Figure 3 (Train+Test PoC) | [`figure_3`] |
//! | Figure 4 (Test+Hit PoC) | [`figure_4`] |
//! | Figure 5 (Train+Test distributions) | [`figure_5`] |
//! | Figure 7 (RSA exponent leak) | [`figure_7`] |
//! | Figure 8 (Test+Hit distributions) | [`figure_8`] |
//! | §VI-B (defenses) | [`defense_report`] |
//! | design-choice ablations | [`ablation_report`] |

use std::fmt::Write as _;

use vpsec::attacks::{build_trial, AttackCategory, AttackSetup};
use vpsec::experiment::{run_trial, Channel, Evaluation, ExperimentConfig, PredictorKind};
use vpsec::model::enumerate;
use vpsec::{defense, taxonomy};
use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};
use vpsim_harness::{Campaign, CampaignOutcome, CellSpec, Exec};
use vpsim_predictor::{DefenseSpec, IndexConfig, LoadContext, Lvp, LvpConfig, ValuePredictor};

// `IndexConfig` is used both for the index-truncation microbenchmark and
// the pid-indexing experiment below.
use vpsim_stats::Histogram;

/// Default experiment configuration with the given trial count.
#[must_use]
pub fn config(trials: usize) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        ..ExperimentConfig::default()
    }
}

fn verdict(p: f64) -> &'static str {
    if p < vpsim_stats::SIGNIFICANCE {
        "EFFECTIVE (red)"
    } else {
        "not effective (black)"
    }
}

/// Append a one-line supervision note when the campaign ran degraded:
/// cancellations, deadline failures, torn manifest lines recovered on
/// resume, sink I/O faults degraded around, worker-process crashes
/// contained by the fleet supervisor, or requests shed under daemon
/// overload. Clean runs add nothing, so golden report texts are
/// unchanged.
fn supervision_note(outcome: &CampaignOutcome, out: &mut String) {
    let s = &outcome.stats;
    let degraded = s.cancelled
        + s.deadline_failed
        + s.torn_lines
        + s.io_faults
        + s.panics
        + s.worker_crashes
        + s.worker_respawns
        + s.shed_requests;
    if degraded > 0 {
        let _ = writeln!(out, "  [supervision] {s}");
    }
}

/// Fetch a cell's evaluation, or append a one-line quarantine note to the
/// report and return `None` — one failed cell degrades its own row, not
/// the whole report.
fn eval_or_quarantine<'a>(
    outcome: &'a CampaignOutcome,
    name: &str,
    out: &mut String,
) -> Option<&'a Evaluation> {
    match outcome.try_eval(name) {
        Ok(e) => Some(e),
        Err(err) => {
            let _ = writeln!(out, "    [quarantined] {err}");
            None
        }
    }
}

/// Table I: the action vocabulary of the attack model.
#[must_use]
pub fn table_i() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: possible actions for each step of value predictor attacks\n"
    );
    let rows = [
        ("S^KD, S^KI", "Sender accesses data (resp. index) that it knows."),
        ("R^KD, R^KI", "Receiver accesses data (resp. index) that it knows."),
        (
            "S^SD', S^SD''",
            "Sender accesses secret data the receiver tries to learn (two possibly different secrets).",
        ),
        (
            "S^SI', S^SI''",
            "Sender accesses a secret-dependent index the receiver tries to learn.",
        ),
        ("—", "Step not used (modify step only)."),
    ];
    for (action, desc) in rows {
        let _ = writeln!(out, "  {action:<14} {desc}");
    }
    out
}

/// Table II: the 576 → 12 enumeration, with each survivor's category.
#[must_use]
pub fn table_ii() -> String {
    let e = enumerate();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: {} step combinations explored, {} effective attacks\n",
        e.total_combinations,
        e.effective.len()
    );
    let _ = writeln!(
        out,
        "  {:<10} {:<10} {:<10} Category",
        "Step 1", "Step 2", "Step 3"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:<10} {:<10}",
        "(Train)", "(Modify)", "(Trigger)"
    );
    for p in &e.effective {
        let _ = writeln!(
            out,
            "  {:<10} {:<10} {:<10} {}",
            p.train.to_string(),
            p.modify.to_string(),
            p.trigger.to_string(),
            p.category().expect("survivor classifies")
        );
    }
    let _ = writeln!(out, "\n  rejection histogram:");
    for (rule, n) in e.rejection_histogram() {
        if n > 0 {
            let _ = writeln!(out, "    {n:>4}  {rule}");
        }
    }
    out
}

/// Build the Table III campaign: every category × channel, without and
/// with the value predictor. Shared by the text report and the CSV
/// export so both reduce the exact same job set.
#[must_use]
pub fn table_iii_campaign(cfg: &ExperimentConfig) -> Campaign {
    let mut campaign = Campaign::new("table3");
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            for kind in [PredictorKind::None, PredictorKind::Lvp] {
                campaign.push(CellSpec::new(
                    format!("{cat}|{channel}|{kind}"),
                    cat,
                    channel,
                    kind,
                    cfg.clone(),
                ));
            }
        }
    }
    campaign
}

/// Table III: p-values and transmission rates for every category ×
/// channel, without and with the value predictor.
///
/// # Panics
///
/// Panics if the campaign cannot run (unusable resume directory or a
/// failing job).
#[must_use]
pub fn table_iii(trials: usize, exec: &Exec) -> String {
    let outcome = table_iii_campaign(&config(trials))
        .run(exec)
        .unwrap_or_else(|e| panic!("table3 campaign: {e}"));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: value predictor attack evaluation ({} trials/distribution)\n",
        trials
    );
    let _ = writeln!(
        out,
        "  {:<15} | {:<12} {:<26} | {:<12} {:<26}",
        "Attack Category", "TW no VP", "TW with VP (rate)", "P no VP", "P with VP (rate)"
    );
    let cell = |e: Option<&Evaluation>| -> String {
        match e {
            None => "—".to_owned(),
            Some(e) => format!("{:.4}", e.ttest.p_value),
        }
    };
    let cell_rate = |e: Option<&Evaluation>| -> String {
        match e {
            None => "—".to_owned(),
            Some(e) => format!(
                "{:.4} ({:.2}Kbps) {}",
                e.ttest.p_value,
                e.rate_kbps,
                if e.succeeds() { "*" } else { "" }
            ),
        }
    };
    for cat in AttackCategory::ALL {
        let get =
            |channel: Channel, kind: PredictorKind| outcome.get(&format!("{cat}|{channel}|{kind}"));
        let _ = writeln!(
            out,
            "  {:<15} | {:<12} {:<26} | {:<12} {:<26}",
            cat.to_string(),
            cell(get(Channel::TimingWindow, PredictorKind::None)),
            cell_rate(get(Channel::TimingWindow, PredictorKind::Lvp)),
            cell(get(Channel::Persistent, PredictorKind::None)),
            cell_rate(get(Channel::Persistent, PredictorKind::Lvp)),
        );
    }
    let _ = writeln!(
        out,
        "\n  (* = attack effective, p < 0.05; — = channel unsupported)"
    );
    supervision_note(&outcome, &mut out);
    out
}

/// Figure 2: the taxonomy of timing-window channels.
#[must_use]
pub fn figure_2() -> String {
    taxonomy::render()
}

/// Render an LVP entry-state table like the paper's Figure 3/4 VPS
/// diagrams: `index | confidence | usefulness | value | VHist`.
fn vps_state(vp: &Lvp, contexts: &[(&str, LoadContext)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "      {:<8} {:>10} {:>10} {:>8}  VHist",
        "index", "confidence", "usefulness", "value"
    );
    for (label, ctx) in contexts {
        match vp.entry_view(ctx) {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "      {:<8} {:>10} {:>10} {:>8}  {:?}   <- {label}",
                    format!("{:#x}", e.index),
                    e.confidence,
                    e.usefulness,
                    e.value,
                    e.vhist
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "      (no entry)                                    <- {label}"
                );
            }
        }
    }
    out
}

/// The Figure 3-style predictor-state evolution for Train+Test: drive an
/// LVP through the train / modify / trigger protocol at the model level
/// and show the VPS entry after each step, for secret = 1 (modify maps
/// to the trained index) and secret = 0 (it does not).
fn train_test_state_diagram(setup: &AttackSetup) -> String {
    let mut out =
        String::from("  VPS state evolution (LVP entries, as in the Figure 3 diagrams):\n\n");
    for (label, mapped) in [
        ("secret = 1 (mapped)", true),
        ("secret = 0 (unmapped)", false),
    ] {
        let mut vp = Lvp::new(LvpConfig {
            confidence_threshold: setup.confidence,
            ..LvpConfig::default()
        });
        let known = LoadContext {
            pc: setup.target_pc(),
            addr: setup.known_addr,
            pid: 2,
        };
        let secret_pc = if mapped {
            setup.target_slot
        } else {
            setup.alt_slot
        } as u64
            * 4;
        let secret = LoadContext {
            pc: secret_pc,
            addr: setup.secret1_addr,
            pid: 1,
        };
        let watch = [("known index", known), ("secret index", secret)];
        let _ = writeln!(out, "    {label}:");
        for _ in 0..setup.confidence {
            vp.train(&known, setup.known_value, None);
        }
        let _ = writeln!(
            out,
            "    after 1) train (receiver, {}x known):",
            setup.confidence
        );
        out.push_str(&vps_state(&vp, &watch));
        for _ in 0..setup.confidence {
            let p = vp.lookup(&secret).map(|p| p.value);
            vp.train(&secret, setup.known_value + 1, p);
        }
        let _ = writeln!(
            out,
            "    after 2) modify (sender, {}x secret):",
            setup.confidence
        );
        out.push_str(&vps_state(&vp, &watch));
        let trigger = vp.lookup(&known);
        let outcome = match trigger {
            Some(p) if p.value == setup.known_value => "correct prediction (fast)",
            Some(_) => "misprediction (slow: squash + reissue)",
            None => "no prediction (slow: full miss)",
        };
        let _ = writeln!(out, "    3) trigger at the known index -> {outcome}\n");
    }
    out
}

fn poc_walkthrough(category: AttackCategory, trials: usize) -> String {
    let cfg = config(trials.max(4));
    let setup = AttackSetup::default();
    let mut out = String::new();
    for mapped in [true, false] {
        let label = if mapped {
            "mapped (secret = 1)"
        } else {
            "unmapped (secret = 0)"
        };
        let trial = build_trial(category, Channel::TimingWindow, mapped, &setup)
            .expect("timing trial exists");
        let _ = writeln!(out, "--- {label} ---");
        for step in &trial.steps {
            let _ = writeln!(
                out,
                "  step `{}` by {:?} × {}:",
                step.label, step.party, step.repeat
            );
            for line in step.program.disassemble().lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        let o = run_trial(&trial, PredictorKind::Lvp, &cfg, 7);
        let _ = writeln!(out, "  observed trigger window: {} cycles\n", o.observed);
    }
    out
}

/// Figure 3: the Train+Test proof of concept, with program listings and
/// the observed trigger timings for both secret values.
#[must_use]
pub fn figure_3(trials: usize) -> String {
    let mut out = String::from("Figure 3: Train + Test proof of concept\n\n");
    out.push_str(&train_test_state_diagram(&AttackSetup::default()));
    out.push_str(&poc_walkthrough(AttackCategory::TrainTest, trials));
    out
}

/// Figure 4: the Test+Hit proof of concept.
#[must_use]
pub fn figure_4(trials: usize) -> String {
    let mut out = String::from("Figure 4: Test + Hit proof of concept\n\n");
    out.push_str(&poc_walkthrough(AttackCategory::TestHit, trials));
    out
}

/// One panel of a Figure 5/8-style distribution plot.
fn panel(title: &str, e: &Evaluation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {title}  pvalue = {:.4}  [{}]",
        e.ttest.p_value,
        verdict(e.ttest.p_value)
    );
    let hi = e
        .mapped
        .iter()
        .chain(&e.unmapped)
        .fold(0.0f64, |m, &x| m.max(x))
        .max(600.0)
        + 1.0;
    let mut mapped = Histogram::new(0.0, hi, 24);
    mapped.record_all(&e.mapped);
    let mut unmapped = Histogram::new(0.0, hi, 24);
    unmapped.record_all(&e.unmapped);
    let _ = writeln!(out, "    cycles |  mapped | unmapped");
    for i in 0..24 {
        let m = mapped.counts()[i];
        let u = unmapped.counts()[i];
        if m > 0 || u > 0 {
            let _ = writeln!(
                out,
                "    {:>6.0} | {:>7} | {:>8}  {}{}",
                mapped.bin_center(i),
                m,
                u,
                "#".repeat(m as usize * 40 / e.mapped.len().max(1)),
                "-".repeat(u as usize * 40 / e.unmapped.len().max(1)),
            );
        }
    }
    out
}

fn distribution_figure(
    name: &str,
    campaign_name: &str,
    category: AttackCategory,
    trials: usize,
    exec: &Exec,
) -> String {
    let cfg = config(trials);
    let mut out = format!(
        "{name}: timing distributions, {trials} trials per case\n(mapped = '#', unmapped = '-')\n\n"
    );
    let cases = [
        (
            "(1) Timing-Window Channel (no VP)",
            Channel::TimingWindow,
            PredictorKind::None,
        ),
        (
            "(2) Timing-Window Channel (LVP)",
            Channel::TimingWindow,
            PredictorKind::Lvp,
        ),
        (
            "(3) Persistent Channel (no VP)",
            Channel::Persistent,
            PredictorKind::None,
        ),
        (
            "(4) Persistent Channel (LVP)",
            Channel::Persistent,
            PredictorKind::Lvp,
        ),
    ];
    let mut campaign = Campaign::new(campaign_name);
    for (title, channel, kind) in cases {
        campaign.push(CellSpec::new(title, category, channel, kind, cfg.clone()));
    }
    let outcome = campaign
        .run(exec)
        .unwrap_or_else(|e| panic!("distribution campaign: {e}"));
    for (title, _, _) in cases {
        match outcome.try_eval(title) {
            Ok(e) => {
                out.push_str(&panel(title, e));
                out.push('\n');
            }
            Err(err) => {
                let _ = writeln!(out, "{title}\n    [quarantined] {err}\n");
            }
        }
    }
    supervision_note(&outcome, &mut out);
    out
}

/// Figure 5: Train+Test timing distributions over the timing-window and
/// persistent channels, with and without the value predictor.
#[must_use]
pub fn figure_5(trials: usize, exec: &Exec) -> String {
    distribution_figure(
        "Figure 5 (Train + Test)",
        "fig5",
        AttackCategory::TrainTest,
        trials,
        exec,
    )
}

/// Figure 8: the same four panels for Test+Hit.
#[must_use]
pub fn figure_8(trials: usize, exec: &Exec) -> String {
    distribution_figure(
        "Figure 8 (Test + Hit)",
        "fig8",
        AttackCategory::TestHit,
        trials,
        exec,
    )
}

/// Figure 7: the receiver's per-iteration observations while the victim
/// runs the Figure 6 modular exponentiation, plus the recovery rate over
/// repeated runs (the paper reports 95.7% over 60 runs at 9.65 Kbps).
#[must_use]
pub fn figure_7(bits: usize, runs: usize) -> String {
    let mut out = format!(
        "Figure 7: RSA exponent-bit leak through the value predictor\n\
         ({bits}-bit secret exponent, {runs} runs)\n\n"
    );
    // A fixed "key": alternating-ish bit pattern with an MSB of 1.
    let mut exponent = Mpi::one();
    for i in 0..bits.saturating_sub(1) {
        exponent = exponent.shl_bits(1);
        if (i * 7 + 3) % 5 < 2 {
            exponent = exponent.add(&Mpi::one());
        }
    }
    let mut total_correct = 0usize;
    let mut total_bits = 0usize;
    let mut first_series = None;
    let mut rate_sum = 0.0;
    for run in 0..runs {
        let cfg = LeakConfig {
            seed: 0x965 + run as u64,
            ..LeakConfig::default()
        };
        let r = leak_exponent(&exponent, &cfg);
        total_correct += r
            .true_bits
            .iter()
            .zip(&r.recovered_bits)
            .filter(|(a, b)| a == b)
            .count();
        total_bits += r.true_bits.len();
        rate_sum += r.rate_kbps();
        if first_series.is_none() {
            first_series = Some(r);
        }
    }
    let r = first_series.expect("at least one run");
    let _ = writeln!(
        out,
        "  iteration | e_bit | observed cycles (threshold {:.0})",
        r.threshold
    );
    for (i, (&bit, &obs)) in r.true_bits.iter().zip(&r.observations).enumerate() {
        let _ = writeln!(
            out,
            "  {:>9} |   {}   | {:>6.0} {}",
            i,
            u8::from(bit),
            obs,
            if bit { "●" } else { "·" }
        );
    }
    let _ = writeln!(
        out,
        "\n  success rate: {:.1}% over {} bit transmissions ({} runs)",
        100.0 * total_correct as f64 / total_bits.max(1) as f64,
        total_bits,
        runs
    );
    let _ = writeln!(
        out,
        "  transmission rate: {:.2} Kbps",
        rate_sum / runs.max(1) as f64
    );
    out
}

pub(crate) const SWEEPS: [(AttackCategory, &[u64]); 2] = [
    (AttackCategory::TrainTest, &[1, 2, 3, 4, 5]),
    (AttackCategory::TestHit, &[1, 3, 5, 7, 8, 9, 10, 11]),
];

/// Build the §VI-B campaign: the R-type window sweeps plus the defense
/// matrix over every category and channel. Shared with the CSV export.
#[must_use]
pub fn defense_campaign(base: &ExperimentConfig) -> Campaign {
    let mut campaign = Campaign::new("defenses");
    for (cat, windows) in SWEEPS {
        for &s in windows {
            let cfg = ExperimentConfig {
                defense: DefenseSpec {
                    r_type: Some(s),
                    ..DefenseSpec::none()
                },
                ..base.clone()
            };
            campaign.push(CellSpec::new(
                format!("sweep|{cat}|{s}"),
                cat,
                Channel::TimingWindow,
                PredictorKind::Lvp,
                cfg,
            ));
        }
    }
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            for defense in defense::standard_defenses(9) {
                let cfg = ExperimentConfig {
                    defense,
                    ..base.clone()
                };
                campaign.push(CellSpec::new(
                    format!("matrix|{cat}|{channel}|{}", defense.label()),
                    cat,
                    channel,
                    PredictorKind::Lvp,
                    cfg,
                ));
            }
        }
    }
    campaign
}

/// §VI-B: the defense evaluation — an A/D/R matrix per attack plus the
/// R-type window sweeps whose thresholds the paper reports (3 for
/// Train+Test, 9 for Test+Hit).
///
/// # Panics
///
/// Panics if the campaign cannot run.
#[must_use]
pub fn defense_report(trials: usize, exec: &Exec) -> String {
    let outcome = defense_campaign(&config(trials))
        .run(exec)
        .unwrap_or_else(|e| panic!("defense campaign: {e}"));
    let mut out = String::from("Defense evaluation (paper §VI-B)\n\n");
    // Window sweeps.
    for (cat, windows) in SWEEPS {
        let _ = writeln!(out, "  R-type window sweep, {cat} (timing-window):");
        let sweep: Vec<(u64, f64)> = windows
            .iter()
            .filter_map(|&s| {
                eval_or_quarantine(&outcome, &format!("sweep|{cat}|{s}"), &mut out)
                    .map(|e| (s, e.ttest.p_value))
            })
            .collect();
        for (s, p) in &sweep {
            let _ = writeln!(out, "    S = {s:>2}: pvalue = {p:.4}  [{}]", verdict(*p));
        }
        let _ = writeln!(
            out,
            "    minimal secure window: {}\n",
            defense::minimal_secure_window(&sweep)
                .map_or("none in sweep".to_owned(), |s| s.to_string())
        );
    }
    // Defense matrix per category over both channels.
    let _ = writeln!(out, "  defense matrix (R window 9):");
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            let rows: Vec<(DefenseSpec, &Evaluation)> = defense::standard_defenses(9)
                .into_iter()
                .filter_map(|d| {
                    outcome
                        .get(&format!("matrix|{cat}|{channel}|{}", d.label()))
                        .map(|e| (d, e))
                })
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "    {cat} / {channel}:");
            for (defense, e) in rows {
                let _ = writeln!(
                    out,
                    "      {:<10} pvalue = {:.4}  [{}]",
                    defense.label(),
                    e.ttest.p_value,
                    if e.succeeds() {
                        "still leaks"
                    } else {
                        "defended"
                    }
                );
            }
        }
    }
    supervision_note(&outcome, &mut out);
    out
}

/// Prediction coverage of an LVP under index truncation: a synthetic
/// many-load workload shows how fewer index bits introduce conflicts and
/// reduce the prediction rate (paper §I-A).
#[must_use]
pub fn index_bits_ablation(num_pcs: usize, rounds: usize) -> Vec<(Option<u32>, f64)> {
    [None, Some(16), Some(10), Some(8), Some(6)]
        .into_iter()
        .map(|bits| {
            let mut vp = Lvp::new(LvpConfig {
                index: IndexConfig {
                    index_bits: bits,
                    ..IndexConfig::default()
                },
                capacity: 1 << 16,
                ..LvpConfig::default()
            });
            let mut lookups = 0u64;
            let mut predicted = 0u64;
            let warmup = LvpConfig::default().confidence_threshold as usize;
            for round in 0..warmup + rounds {
                for pc in 0..num_pcs {
                    let ctx = LoadContext {
                        pc: (pc as u64) * 4,
                        addr: 0x1000 + (pc as u64) * 8,
                        pid: 0,
                    };
                    if round >= warmup {
                        lookups += 1;
                        let p = vp.lookup(&ctx);
                        if p.is_some() {
                            predicted += 1;
                        }
                        vp.train(&ctx, pc as u64 ^ 0xabcd, p.map(|p| p.value));
                    } else {
                        vp.train(&ctx, pc as u64 ^ 0xabcd, None);
                    }
                }
            }
            (bits, predicted as f64 / lookups.max(1) as f64)
        })
        .collect()
}

const ABLATION_CONFIDENCES: [u32; 5] = [1, 2, 3, 5, 8];
const ABLATION_JITTERS: [u64; 5] = [0, 12, 50, 120, 250];
const ABLATION_KINDS: [PredictorKind; 5] = [
    PredictorKind::Lvp,
    PredictorKind::Vtage,
    PredictorKind::OracleLvp,
    PredictorKind::OracleVtage,
    PredictorKind::Stride,
];

/// Build the ablation campaign: confidence-threshold, DRAM-jitter,
/// prefetcher, pid-indexing and predictor-type sweeps as one job pool.
#[must_use]
pub fn ablation_campaign(trials: usize) -> Campaign {
    let mut campaign = Campaign::new("ablations");
    let tt = AttackCategory::TrainTest;
    let tw = Channel::TimingWindow;
    for confidence in ABLATION_CONFIDENCES {
        let cfg = ExperimentConfig {
            trials,
            setup: AttackSetup {
                confidence,
                ..AttackSetup::default()
            },
            ..ExperimentConfig::default()
        };
        campaign.push(CellSpec::new(
            format!("confidence|{confidence}"),
            tt,
            tw,
            PredictorKind::Lvp,
            cfg,
        ));
    }
    for jitter in ABLATION_JITTERS {
        let mem = vpsim_mem::MemoryConfig {
            dram_jitter: jitter,
            ..vpsim_mem::MemoryConfig::default()
        };
        let cfg = ExperimentConfig {
            trials,
            mem,
            ..ExperimentConfig::default()
        };
        campaign.push(CellSpec::new(
            format!("jitter|{jitter}"),
            tt,
            tw,
            PredictorKind::Lvp,
            cfg,
        ));
    }
    let prefetch_mem = vpsim_mem::MemoryConfig {
        prefetch: vpsim_mem::PrefetchKind::NextLine,
        ..vpsim_mem::MemoryConfig::default()
    };
    for kind in [PredictorKind::None, PredictorKind::Lvp] {
        let cfg = ExperimentConfig {
            trials,
            mem: prefetch_mem,
            ..ExperimentConfig::default()
        };
        campaign.push(CellSpec::new(format!("prefetch|{kind}"), tt, tw, kind, cfg));
    }
    let pid_cfg = ExperimentConfig {
        trials,
        index: IndexConfig {
            use_pid: true,
            ..IndexConfig::default()
        },
        ..ExperimentConfig::default()
    };
    campaign.push(CellSpec::new(
        "pid|cross",
        tt,
        tw,
        PredictorKind::Lvp,
        pid_cfg.clone(),
    ));
    campaign.push(CellSpec::new(
        "pid|internal",
        AttackCategory::FillUp,
        tw,
        PredictorKind::Lvp,
        pid_cfg,
    ));
    for kind in ABLATION_KINDS {
        for cat in [tt, AttackCategory::TestHit] {
            campaign.push(CellSpec::new(
                format!("kind|{kind}|{cat}"),
                cat,
                tw,
                kind,
                config(trials),
            ));
        }
    }
    let fcm_cfg = ExperimentConfig {
        trials,
        setup: AttackSetup {
            extra_training: 8,
            ..AttackSetup::default()
        },
        ..ExperimentConfig::default()
    };
    campaign.push(CellSpec::new(
        "fcm|deep",
        tt,
        tw,
        PredictorKind::Fcm,
        fcm_cfg,
    ));
    campaign
}

/// The ablation report: index truncation, confidence threshold, and
/// predictor type (LVP vs VTAGE vs stride vs oracle — §IV-D3).
///
/// # Panics
///
/// Panics if the campaign cannot run.
#[must_use]
pub fn ablation_report(trials: usize, exec: &Exec) -> String {
    let outcome = ablation_campaign(trials)
        .run(exec)
        .unwrap_or_else(|e| panic!("ablation campaign: {e}"));
    let mut out = String::from("Design-choice ablations\n\n");
    // 1. Index truncation (predictor-level).
    let _ = writeln!(
        out,
        "  index bits vs prediction coverage (256 loads, constant values):"
    );
    for (bits, coverage) in index_bits_ablation(256, 6) {
        let _ = writeln!(
            out,
            "    {:>5} bits: {:.1}% of lookups predicted",
            bits.map_or("full".to_owned(), |b| b.to_string()),
            coverage * 100.0
        );
    }
    // 2. Confidence threshold vs attack effectiveness.
    let _ = writeln!(out, "\n  confidence threshold vs Train+Test leak:");
    for confidence in ABLATION_CONFIDENCES {
        let Some(e) = eval_or_quarantine(&outcome, &format!("confidence|{confidence}"), &mut out)
        else {
            continue;
        };
        let _ = writeln!(
            out,
            "    confidence {confidence}: pvalue = {:.4} [{}], {:.2} Kbps",
            e.ttest.p_value,
            verdict(e.ttest.p_value),
            e.rate_kbps
        );
    }
    // 2a. noise robustness: attacks survive realistic DRAM jitter; the
    // covert channel's bit-error rate degrades gracefully.
    let _ = writeln!(
        out,
        "\n  DRAM jitter vs Train+Test leak and Fill Up covert BER:"
    );
    for jitter in ABLATION_JITTERS {
        let mem = vpsim_mem::MemoryConfig {
            dram_jitter: jitter,
            ..vpsim_mem::MemoryConfig::default()
        };
        let Some(e) = eval_or_quarantine(&outcome, &format!("jitter|{jitter}"), &mut out) else {
            continue;
        };
        let covert_cfg = vpsec::covert::CovertConfig {
            experiment: ExperimentConfig {
                mem,
                ..ExperimentConfig::default()
            },
            calibration: 6,
            ..vpsec::covert::CovertConfig::default()
        };
        let msg = vpsec::covert::transmit(b"DAC21", &covert_cfg).expect("supported");
        let _ = writeln!(
            out,
            "    jitter ±{jitter:>3}: pvalue = {:.4} [{}], covert BER = {:.1}%",
            e.ttest.p_value,
            verdict(e.ttest.p_value),
            msg.ber() * 100.0
        );
    }

    // 2a'. prefetcher contrast (§I-B): prefetchers have no "no
    // prediction" timing case; enabling one neither creates the VP
    // channels nor masks them.
    let _ = writeln!(
        out,
        "\n  next-line prefetcher vs the VP channel (§I-B contrast):"
    );
    if let Some(no_vp) = eval_or_quarantine(&outcome, "prefetch|no VP", &mut out) {
        let _ = writeln!(
            out,
            "    prefetcher on, no VP: pvalue = {:.4} [{}] (a prefetcher alone opens no VP channel)",
            no_vp.ttest.p_value,
            verdict(no_vp.ttest.p_value)
        );
    }
    if let Some(lvp) = eval_or_quarantine(&outcome, "prefetch|LVP", &mut out) {
        let _ = writeln!(
            out,
            "    prefetcher on, LVP:   pvalue = {:.4} [{}] (and it does not mask the leak)",
            lvp.ttest.p_value,
            verdict(lvp.ttest.p_value)
        );
    }

    // 2b. pid-aware indexing (threat model, footnote 5): pid indexing
    // stops cross-process aliasing but not the sender-internal attacks.
    let _ = writeln!(out, "\n  pid-indexed predictor (threat-model footnote 5):");
    if let Some(cross) = eval_or_quarantine(&outcome, "pid|cross", &mut out) {
        let _ = writeln!(
            out,
            "    cross-process Train+Test: pvalue = {:.4} [{}] (indexes no longer alias)",
            cross.ttest.p_value,
            verdict(cross.ttest.p_value)
        );
    }
    if let Some(internal) = eval_or_quarantine(&outcome, "pid|internal", &mut out) {
        let _ = writeln!(
            out,
            "    sender-internal Fill Up:  pvalue = {:.4} [{}] (pid does not eliminate attacks)",
            internal.ttest.p_value,
            verdict(internal.ttest.p_value)
        );
    }

    // 3. Predictor type (paper §IV-D3: LVP and VTAGE both leak).
    let _ = writeln!(
        out,
        "\n  predictor type vs leak (Train+Test & Test+Hit, timing-window):"
    );
    for kind in ABLATION_KINDS {
        let tt = eval_or_quarantine(
            &outcome,
            &format!("kind|{kind}|{}", AttackCategory::TrainTest),
            &mut out,
        );
        let th = eval_or_quarantine(
            &outcome,
            &format!("kind|{kind}|{}", AttackCategory::TestHit),
            &mut out,
        );
        let (Some(tt), Some(th)) = (tt, th) else {
            continue;
        };
        let _ = writeln!(
            out,
            "    {:<13} Train+Test p = {:.4} [{}], Test+Hit p = {:.4} [{}]",
            kind.to_string(),
            tt.ttest.p_value,
            verdict(tt.ttest.p_value),
            th.ttest.p_value,
            verdict(th.ttest.p_value),
        );
    }
    // The FCM's context must stabilise before it predicts: the attacker
    // simply trains `history_depth` extra times (higher attack cost,
    // same leak).
    if let Some(tt) = eval_or_quarantine(&outcome, "fcm|deep", &mut out) {
        let _ = writeln!(
            out,
            "    {:<13} Train+Test p = {:.4} [{}] (with 8 extra training accesses)",
            "FCM",
            tt.ttest.p_value,
            verdict(tt.ttest.p_value),
        );
    }
    supervision_note(&outcome, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 10;

    #[test]
    fn table_i_lists_all_actions() {
        let t = table_i();
        for a in ["S^KD", "R^KI", "S^SD'", "S^SI'", "—"] {
            assert!(t.contains(a), "missing {a}");
        }
    }

    #[test]
    fn table_ii_has_twelve_rows_and_576_total() {
        let t = table_ii();
        assert!(t.contains("576 step combinations"));
        assert!(t.contains("12 effective attacks"));
        assert!(t.contains("Spill Over"));
        assert!(t.contains("Modify + Test"));
    }

    #[test]
    fn figure_2_mentions_new_channel() {
        assert!(figure_2().contains("no prediction vs. correct prediction"));
    }

    #[test]
    fn figure_3_shows_programs_and_timings() {
        let f = figure_3(4);
        assert!(f.contains("Train + Test"));
        assert!(f.contains("ld "));
        assert!(f.contains("observed trigger window"));
    }

    #[test]
    fn figure_5_has_four_panels_with_expected_verdicts() {
        let f = figure_5(T, &Exec::default());
        assert_eq!(f.matches("pvalue").count(), 4);
        assert_eq!(f.matches("EFFECTIVE").count(), 2, "{f}");
        assert_eq!(f.matches("not effective").count(), 2, "{f}");
    }

    #[test]
    fn table_iii_reports_every_category() {
        let t = table_iii(T, &Exec::default());
        for cat in AttackCategory::ALL {
            assert!(t.contains(&cat.to_string()), "{cat} missing");
        }
        assert!(t.contains('—'), "unsupported persistent cells render as —");
    }

    #[test]
    fn table_iii_is_identical_at_any_thread_count() {
        let serial = table_iii(T, &Exec::default());
        let parallel = table_iii(
            T,
            &Exec {
                jobs: 4,
                ..Exec::default()
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn index_bits_ablation_monotone_decreasing() {
        let results = index_bits_ablation(256, 4);
        let full = results[0].1;
        let tiny = results.last().unwrap().1;
        assert!(
            full > 0.9,
            "full index should predict nearly always: {full}"
        );
        assert!(
            tiny < full,
            "truncation must reduce coverage: {tiny} vs {full}"
        );
    }

    #[test]
    fn figure_7_reports_success_and_rate() {
        let f = figure_7(8, 1);
        assert!(f.contains("success rate"));
        assert!(f.contains("transmission rate"));
        assert!(f.contains("iteration"));
    }

    #[test]
    fn defense_report_has_both_sweeps_and_matrix() {
        let d = defense_report(8, &Exec::default());
        assert!(d.contains("R-type window sweep, Train + Test"));
        assert!(d.contains("R-type window sweep, Test + Hit"));
        assert!(d.contains("minimal secure window"));
        assert!(d.contains("defense matrix"));
        assert!(d.contains("A+R(9)+D"));
    }

    #[test]
    fn ablation_report_sections_present() {
        let a = ablation_report(
            6,
            &Exec {
                jobs: 2,
                ..Exec::default()
            },
        );
        for section in [
            "index bits vs prediction coverage",
            "confidence threshold",
            "DRAM jitter",
            "next-line prefetcher",
            "pid-indexed predictor",
            "predictor type vs leak",
        ] {
            assert!(a.contains(section), "missing section: {section}");
        }
    }
}
