#!/usr/bin/env sh
# The full offline quality gate: formatting, lints (warnings are
# errors), release build, and the complete test suite. No network or
# registry access is required — the workspace has no external
# dependencies.
set -eux

cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace --quiet

echo "ci: all checks passed"
