#!/usr/bin/env sh
# The full offline quality gate: formatting, lints (warnings are
# errors), release build, and the complete test suite. No network or
# registry access is required — the workspace has no external
# dependencies.
set -eux

cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace --quiet

# Perf smoke: rerun the quick executor-benchmark matrix and compare
# against the committed baseline. Fails on any simulated-cycle drift
# (the event-driven scheduler must stay cycle-exact; the golden-trace
# suite above checks the same property per-instruction) or on a >2x
# wall-clock regression.
cargo run --release -p vpsim-bench --bin bench_pipeline -- \
    --quick --check BENCH_pipeline.quick.json

# Tracing-overhead smoke: the same quick matrix with event tracing
# enabled must stay cycle-exact against the *untraced* baseline (trace
# neutrality: recording events may not perturb simulation) and inside
# the same wall-clock slowdown gate (tracing stays cheap).
cargo run --release -p vpsim-bench --bin bench_pipeline -- \
    --quick --traced --check BENCH_pipeline.quick.json

# Trace-determinism smoke: `repro --trace` is a pure function of
# (traced zoo, trials, seeds) — invocations at different worker counts
# must dump byte-identical JSONL.
TRACE_TMP="$(mktemp -d)"
./target/release/repro --trace "$TRACE_TMP/a.jsonl" --trials 2 --jobs 1 > /dev/null
./target/release/repro --trace "$TRACE_TMP/b.jsonl" --trials 2 --jobs 4 > /dev/null
cmp "$TRACE_TMP/a.jsonl" "$TRACE_TMP/b.jsonl"
rm -rf "$TRACE_TMP"

# Robustness smoke: the quick chaos sweep (12 attack variants + RSA x
# noise levels 0-4 x both receivers) is fully seeded, so every cell
# must match the committed baseline bit for bit.
cargo run --release -p vpsim-bench --bin bench_chaos -- \
    --quick --check BENCH_chaos.quick.json

# Fuzz: malformed configs/programs must return typed errors, not panic,
# and manifest record lines must round-trip bit-exactly while torn or
# adversarial lines are rejected.
cargo test --release -q -p vpsim-bench --test fuzz_validation

# Torture (quick): kill/resume the reference campaign at >=20 seeded
# interruption points, sweep seeded hostile sink-I/O fault plans
# (including a simulated crash), cancel a deliberately hung cell within
# its hard deadline, and abuse the process-isolated fleet (SIGKILL,
# poisoned cells, muted heartbeats, zombie sweep). Every path must
# converge bit-identically.
cargo test --release -q -p vpsim-harness --test torture

# Overload smoke: a slowloris peer trickling half a request must not
# block a parallel /healthz and must be evicted by the read timeout;
# connections and submissions past the caps are shed with 503.
cargo test --release -q -p vpsim-serve --test serve_integration -- slowloris shed

# Serve smoke: boot a real daemon on an ephemeral port, submit two
# campaigns, stream one to completion, check progress and metrics,
# cancel the other mid-flight, and shut down cleanly.
SERVE_STATE="$(mktemp -d)"
SERVE_LOG="$SERVE_STATE/daemon.out"
./target/release/repro serve --port 0 --state "$SERVE_STATE/state" \
    --runners 2 --jobs 2 > "$SERVE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SERVE_STATE"' EXIT
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SERVE_LOG" && break
    sleep 0.1
done
SERVE_ADDR="$(sed -n 's/.*listening on //p' "$SERVE_LOG" | head -1)"
printf '%s' '{"name":"ci-smoke","trials":20,"seed":7,"cells":[{"category":"train_test","channel":"timing_window","predictor":"lvp"}]}' \
    > "$SERVE_STATE/smoke.json"
./target/release/repro submit --addr "$SERVE_ADDR" --spec "$SERVE_STATE/smoke.json"
printf '%s' '{"name":"ci-doomed","trials":50000,"seed":7,"cells":[{"category":"train_test","channel":"timing_window","predictor":"lvp"}]}' \
    > "$SERVE_STATE/doomed.json"
./target/release/repro submit --addr "$SERVE_ADDR" --spec "$SERVE_STATE/doomed.json"
./target/release/repro watch --addr "$SERVE_ADDR" --id 1 | grep -q '"state":"done"'
./target/release/repro query --addr "$SERVE_ADDR" --id 1 | grep -q '"state":"done"'
./target/release/repro query --addr "$SERVE_ADDR" | grep -q 'ci-doomed'
./target/release/repro cancel --addr "$SERVE_ADDR" --id 2
./target/release/repro query --addr "$SERVE_ADDR" --id 2 | grep -q '"state":"cancelled"'
./target/release/repro metrics --addr "$SERVE_ADDR" | grep -q 'vpsim_jobs_done_total'
./target/release/repro shutdown --addr "$SERVE_ADDR"
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SERVE_STATE"

# Fleet smoke: a campaign on the process-isolated backend must survive
# one of its workers being SIGKILLed mid-run — exit 0 with result lines
# byte-identical to the thread backend.
FLEET_TMP="$(mktemp -d)"
trap 'rm -rf "$FLEET_TMP"' EXIT
printf '%s' '{"name":"ci-fleet","trials":40,"seed":7,"cells":[{"category":"train_test","channel":"timing_window","predictor":"lvp"}]}' \
    > "$FLEET_TMP/spec.json"
./target/release/repro run --spec "$FLEET_TMP/spec.json" --isolate thread \
    > "$FLEET_TMP/thread.out"
./target/release/repro run --spec "$FLEET_TMP/spec.json" --isolate process --workers 2 \
    > "$FLEET_TMP/fleet.out" &
FLEET_PID=$!
WORKER_PID=""
for _ in $(seq 1 100); do
    WORKER_PID="$(pgrep -o -f 'release/repro --worker-loop' 2>/dev/null || true)"
    [ -n "$WORKER_PID" ] && break
    sleep 0.05
done
[ -n "$WORKER_PID" ] && kill -9 "$WORKER_PID" 2>/dev/null || true
wait "$FLEET_PID"
cmp "$FLEET_TMP/thread.out" "$FLEET_TMP/fleet.out"
trap - EXIT
rm -rf "$FLEET_TMP"

echo "ci: all checks passed"
