#!/usr/bin/env sh
# The full offline quality gate: formatting, lints (warnings are
# errors), release build, and the complete test suite. No network or
# registry access is required — the workspace has no external
# dependencies.
set -eux

cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace --quiet

# Perf smoke: rerun the quick executor-benchmark matrix and compare
# against the committed baseline. Fails on any simulated-cycle drift
# (the event-driven scheduler must stay cycle-exact; the golden-trace
# suite above checks the same property per-instruction) or on a >2x
# wall-clock regression.
cargo run --release -p vpsim-bench --bin bench_pipeline -- \
    --quick --check BENCH_pipeline.quick.json

# Robustness smoke: the quick chaos sweep (12 attack variants + RSA x
# noise levels 0-4 x both receivers) is fully seeded, so every cell
# must match the committed baseline bit for bit.
cargo run --release -p vpsim-bench --bin bench_chaos -- \
    --quick --check BENCH_chaos.quick.json

# Fuzz: malformed configs/programs must return typed errors, not panic,
# and manifest record lines must round-trip bit-exactly while torn or
# adversarial lines are rejected.
cargo test --release -q -p vpsim-bench --test fuzz_validation

# Torture (quick): kill/resume the reference campaign at >=20 seeded
# interruption points, sweep seeded hostile sink-I/O fault plans
# (including a simulated crash), and cancel a deliberately hung cell
# within its hard deadline. Every path must converge bit-identically.
cargo test --release -q -p vpsim-harness --test torture

echo "ci: all checks passed"
