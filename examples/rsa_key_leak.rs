//! The Figures 6–7 end-to-end attack: leak a secret RSA exponent out of
//! a FLUSH+RELOAD-hardened modular exponentiation through the value
//! predictor, then verify the stolen key actually decrypts.
//!
//! ```sh
//! cargo run --release -p vpsim-crypto --example rsa_key_leak [bits]
//! ```

use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    // A toy RSA key pair: p = 61, q = 53 → n = 3233, e = 17, d = 2753 —
    // plus a larger random-looking secret exponent for the leak itself.
    let n = Mpi::from_u64(3233);
    let e = Mpi::from_u64(17);
    let d = Mpi::from_u64(2753);
    let msg = Mpi::from_u64(1234);
    let ct = Mpi::powm(&msg, &e, &n);
    println!("victim: hardened square-and-multiply (unconditional multiply,");
    println!("        conditional pointer swap — Figure 6)\n");
    println!("ciphertext of {msg}: {ct}");

    // Build a `bits`-long secret exponent whose low bits embed d.
    let mut secret = Mpi::one();
    for i in 0..bits - 1 {
        secret = secret.shl_bits(1);
        if (i % 3 == 0) ^ (i % 7 == 2) {
            secret = secret.add(&Mpi::one());
        }
    }
    let secret = secret.shl_bits(12).add(&d);
    println!("secret exponent ({} bits): {secret}\n", secret.bit_len());

    // The attack: per square-and-multiply iteration, the receiver trains
    // the predictor at the pointer-swap load's PC, lets the victim run
    // one iteration, and times a trigger — slow means the conditional
    // load ran (bit 1), fast means it did not (bit 0).
    let cfg = LeakConfig::default();
    let result = leak_exponent(&secret, &cfg);
    println!(
        "leaked {} bits, success rate {:.1}%, ~{:.2} Kbps (threshold {:.0} cycles)",
        result.true_bits.len(),
        result.success_rate() * 100.0,
        result.rate_kbps(),
        result.threshold
    );

    // Reassemble the stolen exponent and prove it works.
    let mut stolen = Mpi::zero();
    for &bit in &result.recovered_bits {
        stolen = stolen.shl_bits(1);
        if bit {
            stolen = stolen.add(&Mpi::one());
        }
    }
    println!("stolen exponent:  {stolen}");
    assert_eq!(stolen, secret, "bit-exact recovery expected on this run");

    // The low 12 bits carry d: strip and decrypt.
    let (d_stolen, _) = stolen.div_rem(&Mpi::one().shl_bits(12));
    let d_stolen = stolen.sub(&d_stolen.shl_bits(12));
    let pt = Mpi::powm(&ct, &d_stolen, &n);
    println!("decrypting with the stolen key: {pt}");
    assert_eq!(pt, msg);
    println!("\nthe FLUSH+RELOAD hardening did not help: the *index* of the");
    println!("conditional pointer-swap load leaked through the value predictor.");
}
