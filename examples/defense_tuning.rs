//! Defense tuning: sweep the R-type window for two attacks with
//! different secret/known value distances and find each minimal secure
//! window; then show what the A/D defenses add.
//!
//! ```sh
//! cargo run --release -p vpsec --example defense_tuning [trials]
//! ```

use vpsec::attacks::AttackCategory;
use vpsec::defense::{defense_matrix, minimal_secure_window, standard_defenses, window_sweep};
use vpsec::experiment::{Channel, ExperimentConfig, PredictorKind};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let base = ExperimentConfig {
        trials,
        ..ExperimentConfig::default()
    };

    println!("R-type defense: predict a random value from a window of size S");
    println!("around the would-be prediction (correct with probability 1/S).");
    println!("An attack distinguishing values at distance Δ needs S ≥ 2Δ+1");
    println!("before both its cases show the same correctness statistics.\n");

    for (cat, delta, windows) in [
        (AttackCategory::TrainTest, 1u64, vec![1, 2, 3, 4, 5]),
        (
            AttackCategory::TestHit,
            4u64,
            vec![1, 3, 5, 7, 8, 9, 10, 11],
        ),
    ] {
        println!(
            "{cat} (value distance Δ = {delta}, predicted threshold {}):",
            2 * delta + 1
        );
        let sweep = window_sweep(
            cat,
            Channel::TimingWindow,
            PredictorKind::Lvp,
            &windows,
            &base,
        );
        for (s, p) in &sweep {
            println!(
                "  S = {s:>2}  p = {p:.4}  {}",
                if *p < 0.05 { "leaks" } else { "secure" }
            );
        }
        println!(
            "  → minimal secure window: {}\n",
            minimal_secure_window(&sweep).map_or("none".into(), |s| s.to_string())
        );
    }

    println!("Full defense matrix for the Spill Over attack (the new");
    println!("no-prediction-vs-correct-prediction channel):");
    let rows = defense_matrix(
        AttackCategory::SpillOver,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &standard_defenses(9),
        &base,
    );
    for row in rows {
        println!(
            "  {:<10} p = {:.4}  {}",
            row.defense.label(),
            row.evaluation.ttest.p_value,
            if row.defended() {
                "defended"
            } else {
                "still leaks"
            }
        );
    }
    println!("\nR-type alone leaves the no-prediction case observable;");
    println!("combining A-type (always predict) with R-type closes it.");
}
