//! Quickstart: build a machine with a value predictor, run a program,
//! and mount the simplest attack (Fill Up) by hand.
//!
//! ```sh
//! cargo run --release -p vpsec --example quickstart
//! ```

use vpsec::attacks::{build_trial, AttackCategory};
use vpsec::experiment::{run_trial, Channel, ExperimentConfig, PredictorKind};
use vpsec::isa::{ProgramBuilder, Reg};
use vpsec::mem::MemoryConfig;
use vpsec::pipeline::{CoreConfig, Machine};
use vpsec::predictor::{Lvp, LvpConfig};
use vpsec::stats::welch_t_test;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A machine: out-of-order core + cache hierarchy + LVP.
    let mut machine = Machine::new(
        CoreConfig::default(),
        MemoryConfig::default(),
        Box::new(Lvp::new(LvpConfig::default())),
        42,
    );
    machine.mem_mut().store_value(0x1000, 7);

    // 2. A program: flush forces the load to miss, which is when a
    //    load-based VPS trains (and, once confident, predicts). A second
    //    load *depends on the first load's value* — with a prediction it
    //    overlaps the outstanding miss; without one it serialises.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 0x1000)
        .li(Reg::R9, 0x2000) // dependent-chain base
        .flush(Reg::R1, 0)
        .li(Reg::R6, 0x2000 + 7 * 128)
        .flush(Reg::R6, 0) // the dependent target must also miss
        .fence()
        .rdtsc(Reg::R10)
        .load(Reg::R2, Reg::R1, 0)
        .li(Reg::R7, 7)
        .alu(vpsec::isa::AluOp::Shl, Reg::R4, Reg::R2, Reg::R7)
        .alu(vpsec::isa::AluOp::Add, Reg::R4, Reg::R4, Reg::R9)
        .load(Reg::R5, Reg::R4, 0)
        .fence()
        .rdtsc(Reg::R11)
        .halt();
    let program = b.build()?;

    println!("run | window incl. dependent load | predicted?");
    for run in 0..6 {
        let r = machine.run(0, &program)?;
        println!(
            "{run:>3} | {:>27} | {}",
            r.timing_windows()[0],
            if r.stats.predicted_loads > 0 {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\nAfter `confidence` (3) trainings the predictor supplies the");
    println!("value at L1-hit latency, letting the dependent load overlap");
    println!("the miss: the window collapses — that is the side channel.\n");

    // 3. The same effect, packaged: a Fill Up attack trial.
    let cfg = ExperimentConfig {
        trials: 25,
        ..ExperimentConfig::default()
    };
    let mapped = build_trial(
        AttackCategory::FillUp,
        Channel::TimingWindow,
        true,
        &cfg.setup,
    )
    .expect("supported");
    let unmapped = build_trial(
        AttackCategory::FillUp,
        Channel::TimingWindow,
        false,
        &cfg.setup,
    )
    .expect("supported");
    let mut m_obs = Vec::new();
    let mut u_obs = Vec::new();
    for t in 0..cfg.trials as u64 {
        m_obs.push(run_trial(&mapped, PredictorKind::Lvp, &cfg, t).observed);
        u_obs.push(run_trial(&unmapped, PredictorKind::Lvp, &cfg, t).observed);
    }
    let t = welch_t_test(&m_obs, &u_obs);
    println!("Fill Up attack: same-secret trials vs different-secret trials");
    println!(
        "  mean(mapped)   = {:.0} cycles (correct prediction)",
        m_obs.iter().sum::<f64>() / m_obs.len() as f64
    );
    println!(
        "  mean(unmapped) = {:.0} cycles (misprediction)",
        u_obs.iter().sum::<f64>() / u_obs.len() as f64
    );
    println!("  Welch t-test: {t}");
    println!("  → the receiver learns whether two secret values are equal.");
    Ok(())
}
