//! Covert messaging through the value predictor: send a real byte
//! string one bit per attack trial, through two different attack
//! categories and both channels, and watch it fail without a predictor.
//!
//! ```sh
//! cargo run --release -p vpsec --example covert_channel [message]
//! ```

use vpsec::attacks::AttackCategory;
use vpsec::covert::{transmit, CovertConfig};
use vpsec::experiment::{Channel, PredictorKind};

fn show(label: &str, cfg: &CovertConfig, message: &[u8]) {
    match transmit(message, cfg) {
        None => println!("{label:<40} unsupported channel"),
        Some(r) => {
            let text: String = r
                .received
                .iter()
                .map(|&b| {
                    if b.is_ascii_graphic() || b == b' ' {
                        b as char
                    } else {
                        '?'
                    }
                })
                .collect();
            println!(
                "{label:<40} \"{text}\"  BER {:>5.1}%  {:>8.1} Kbps",
                r.ber() * 100.0,
                r.kbps()
            );
        }
    }
}

fn main() {
    let message = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "value prediction leaks".to_owned());
    let message = message.as_bytes();
    println!(
        "sending {:?} ({} bits per configuration)\n",
        String::from_utf8_lossy(message),
        message.len() * 8
    );

    let base = CovertConfig::default();
    show(
        "Fill Up / timing-window / LVP",
        &CovertConfig {
            category: AttackCategory::FillUp,
            channel: Channel::TimingWindow,
            ..base.clone()
        },
        message,
    );
    show(
        "Train+Test / timing-window / LVP",
        &CovertConfig {
            category: AttackCategory::TrainTest,
            channel: Channel::TimingWindow,
            ..base.clone()
        },
        message,
    );
    show(
        "Test+Hit / persistent / LVP",
        &CovertConfig {
            category: AttackCategory::TestHit,
            channel: Channel::Persistent,
            ..base.clone()
        },
        message,
    );
    show(
        "Test+Hit / persistent / oracle VTAGE",
        &CovertConfig {
            category: AttackCategory::TestHit,
            channel: Channel::Persistent,
            predictor: PredictorKind::OracleVtage,
            ..base.clone()
        },
        message,
    );
    show(
        "Fill Up / timing-window / NO predictor",
        &CovertConfig {
            category: AttackCategory::FillUp,
            channel: Channel::TimingWindow,
            predictor: PredictorKind::None,
            ..base
        },
        message,
    );
    println!("\nWith a value predictor the message survives; without one the");
    println!("two symbols are indistinguishable and the text turns to noise.");
}
