//! Classic Spectre-v1 on the same simulator — the Figure 2 taxonomy's
//! *transient execution attacks* branch, next to which the paper places
//! its new value-predictor attacks.
//!
//! ```sh
//! cargo run --release -p vpsec --example spectre_v1
//! ```

use vpsec::attacks::spectre::{run_attack, SpectreLayout};

fn main() {
    let layout = SpectreLayout::default();
    println!("victim gadget: if (x < size) y = array2[array1[x] * stride];");
    println!(
        "secret word planted at array1[{}] (out of bounds; size = {})\n",
        layout.oob_index(),
        layout.array1_size
    );
    let message = b"SPECTRE";
    let mut recovered = Vec::new();
    for (i, &byte) in message.iter().enumerate() {
        let out = run_attack(&layout, u64::from(byte) % 256, 256, i as u64);
        assert!(out.branch_mispredictions >= 1);
        recovered.push(out.recovered.map_or(b'?', |v| v as u8));
    }
    println!(
        "recovered through the bounds-check bypass: {:?}",
        String::from_utf8_lossy(&recovered)
    );
    assert_eq!(&recovered, message);
    println!("\nSame machine, same Flush+Reload decode as the value-predictor");
    println!("attacks — only the *speculation source* differs: a predicted");
    println!("branch direction here, a predicted load value there.");
}
