//! The attack zoo: run all six Table II/III attack categories over both
//! channels, against the no-VP baseline, the LVP and the oracle VTAGE,
//! and print the verdict matrix.
//!
//! ```sh
//! cargo run --release -p vpsec --example attack_zoo [trials]
//! ```

use vpsec::attacks::AttackCategory;
use vpsec::experiment::{try_evaluate, Channel, ExperimentConfig, PredictorKind};
use vpsec::model::enumerate;
use vpsec::taxonomy;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let cfg = ExperimentConfig {
        trials,
        ..ExperimentConfig::default()
    };

    // The model first: where do these six categories come from?
    let e = enumerate();
    println!(
        "Attack model: {} combinations → {} effective variants in 6 categories\n",
        e.total_combinations,
        e.effective.len()
    );
    println!("{}", taxonomy::render());

    println!("Verdict matrix ({trials} trials per distribution; p < 0.05 = leak):\n");
    println!(
        "{:<15} {:<10} | {:>10} {:>10} {:>14}",
        "category", "channel", "no VP", "LVP", "oracle VTAGE"
    );
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            let cell = |kind| match try_evaluate(cat, channel, kind, &cfg) {
                None => "—".to_owned(),
                Some(e) => format!(
                    "{:.4}{}",
                    e.ttest.p_value,
                    if e.succeeds() { "*" } else { " " }
                ),
            };
            let none = cell(PredictorKind::None);
            if none == "—" {
                continue;
            }
            println!(
                "{:<15} {:<10} | {:>10} {:>10} {:>14}",
                cat.to_string(),
                channel.to_string(),
                none,
                cell(PredictorKind::Lvp),
                cell(PredictorKind::OracleVtage),
            );
        }
    }
    println!("\n(*) attack effective. Every category leaks with a value");
    println!("predictor and none without — the paper's Table III shape.");
}
