//! Cross-crate integration tests: ISA → pipeline → memory → predictor →
//! attack framework, exercised together through the public `vpsec` API.

use vpsec::attacks::{build_trial, AttackCategory, AttackSetup, Party};
use vpsec::experiment::{run_trial, Channel, ExperimentConfig, PredictorKind};
use vpsec::isa::{AluOp, ProgramBuilder, Reg};
use vpsec::mem::{MemoryConfig, MemoryHierarchy};
use vpsec::model::enumerate;
use vpsec::pipeline::{CoreConfig, Machine};
use vpsec::predictor::{Lvp, LvpConfig, NoPredictor, ValuePredictor};
use vpsec::stats::welch_t_test;

/// A realistic multi-phase program: build a table in memory, reduce it,
/// and verify the committed architectural result against a host-side
/// model.
#[test]
fn end_to_end_program_semantics() {
    let mut m = Machine::new(
        CoreConfig::default(),
        MemoryConfig::deterministic(),
        Box::new(Lvp::new(LvpConfig::default())),
        3,
    );
    let base = 0x5000u64;
    let n = 32u64;
    // Phase 1: mem[base + 8i] = i * 3 + 1.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, base)
        .li(Reg::R2, 0)
        .li(Reg::R3, n)
        .li(Reg::R4, 3)
        .li(Reg::R8, 3); // shift for ×8
    b.label("fill").unwrap();
    b.alu(AluOp::Mul, Reg::R5, Reg::R2, Reg::R4)
        .addi(Reg::R5, Reg::R5, 1)
        .alu(AluOp::Shl, Reg::R6, Reg::R2, Reg::R8)
        .alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R1)
        .store(Reg::R5, Reg::R6, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "fill");
    // Phase 2: sum the table.
    b.li(Reg::R2, 0).li(Reg::R10, 0);
    b.label("sum").unwrap();
    b.alu(AluOp::Shl, Reg::R6, Reg::R2, Reg::R8)
        .alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R1)
        .load(Reg::R5, Reg::R6, 0)
        .alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R5)
        .addi(Reg::R2, Reg::R2, 1)
        .blt(Reg::R2, Reg::R3, "sum");
    b.halt();
    let program = b.build().expect("valid program");
    let result = m.run(0, &program).expect("program halts");
    let expected: u64 = (0..n).map(|i| i * 3 + 1).sum();
    assert_eq!(result.regs.read(Reg::R10), expected);
    // Memory contents visible to the host.
    for i in 0..n {
        assert_eq!(m.mem().peek(base + 8 * i), i * 3 + 1);
    }
}

/// The model layer and the PoC layer agree: every enumerated category
/// has a runnable timing-window trial and, where promised, a persistent
/// one.
#[test]
fn model_and_pocs_are_consistent() {
    let setup = AttackSetup::default();
    let e = enumerate();
    let mut categories: Vec<AttackCategory> = e
        .effective
        .iter()
        .map(|p| p.category().expect("classified"))
        .collect();
    categories.dedup();
    for cat in AttackCategory::ALL {
        assert!(
            categories.contains(&cat),
            "category {cat} missing from the model's survivors"
        );
        assert!(
            build_trial(cat, Channel::TimingWindow, true, &setup).is_some(),
            "{cat} lacks a timing-window PoC"
        );
        assert_eq!(
            build_trial(cat, Channel::Persistent, true, &setup).is_some(),
            cat.supports_persistent(),
            "{cat} persistent-channel support mismatch"
        );
    }
}

/// Machine state persists across sender/receiver runs: predictor state
/// trained in one process is observable from another (no-pid indexing),
/// which is the cross-process premise of the threat model.
#[test]
fn cross_process_predictor_aliasing() {
    let mut m = Machine::new(
        CoreConfig::default(),
        MemoryConfig::deterministic(),
        Box::new(Lvp::new(LvpConfig::default())),
        5,
    );
    m.mem_mut().store_value(0x9000, 1234);
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 0x9000)
        .flush(Reg::R1, 0)
        .fence()
        .load(Reg::R2, Reg::R1, 0)
        .fence()
        .halt();
    let p = b.build().unwrap();
    // Process 1 trains.
    for _ in 0..3 {
        m.run(1, &p).unwrap();
    }
    // Process 2 triggers the same load PC: the prediction fires.
    let r = m.run(2, &p).unwrap();
    assert!(
        r.stats.predicted_loads >= 1,
        "PC-indexed predictor without pid must alias across processes"
    );
}

/// A full mapped-vs-unmapped experiment through the public API, with the
/// statistics crate making the call — the complete paper pipeline.
#[test]
fn full_pipeline_statistics_verdict() {
    let cfg = ExperimentConfig {
        trials: 15,
        ..ExperimentConfig::default()
    };
    let setup = cfg.setup;
    let mapped = build_trial(AttackCategory::FillUp, Channel::TimingWindow, true, &setup).unwrap();
    let unmapped =
        build_trial(AttackCategory::FillUp, Channel::TimingWindow, false, &setup).unwrap();
    let mut m_obs = Vec::new();
    let mut u_obs = Vec::new();
    for t in 0..cfg.trials as u64 {
        m_obs.push(run_trial(&mapped, PredictorKind::Lvp, &cfg, t).observed);
        u_obs.push(run_trial(&unmapped, PredictorKind::Lvp, &cfg, t).observed);
    }
    let t = welch_t_test(&m_obs, &u_obs);
    assert!(t.significant(), "FillUp under LVP must leak: {t}");
}

/// The trial runner honours parties: sender steps run as pid 1 and
/// receiver steps as pid 2 (observable through a pid-aware predictor
/// stand-in that the framework builds internally — here we check the
/// step metadata directly).
#[test]
fn trials_assign_parties_correctly() {
    let setup = AttackSetup::default();
    let t = build_trial(AttackCategory::TestHit, Channel::TimingWindow, true, &setup).unwrap();
    assert_eq!(
        t.steps[0].party,
        Party::Sender,
        "secret training is the victim's"
    );
    assert_eq!(
        t.steps[1].party,
        Party::Receiver,
        "trigger is the attacker's"
    );
}

/// Memory hierarchy and predictor compose under the raw run_program API.
#[test]
fn raw_run_program_entry_point() {
    let mut mem = MemoryHierarchy::new(MemoryConfig::deterministic(), 0);
    mem.store_value(0x4000, 77);
    let mut vp = NoPredictor::new();
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 0x4000).load(Reg::R2, Reg::R1, 0).halt();
    let p = b.build().unwrap();
    let r = vpsec::pipeline::run_program(CoreConfig::default(), &p, 0, &mut mem, &mut vp)
        .expect("runs");
    assert_eq!(r.regs.read(Reg::R2), 77);
    assert_eq!(vp.stats().lookups, 1, "cold load consults the predictor");
}
