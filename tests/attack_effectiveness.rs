//! The headline result, as an integration test: **every attack category
//! leaks with a value predictor and none leaks without one** (Table III),
//! plus the type-independence result (§IV-D3) and the defense claims
//! (§VI-B) at reduced trial counts.
//!
//! These tests are the executable form of EXPERIMENTS.md; the `repro`
//! binary reruns them at full scale.

use vpsec::attacks::AttackCategory;
use vpsec::defense;
use vpsec::experiment::{evaluate, try_evaluate, Channel, ExperimentConfig, PredictorKind};
use vpsec::predictor::{AlwaysMode, DefenseSpec, IndexConfig};

fn cfg(trials: usize) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        ..ExperimentConfig::default()
    }
}

/// Table III, timing-window column: all six categories leak under LVP.
#[test]
fn all_categories_leak_with_lvp_timing_window() {
    let cfg = cfg(20);
    for cat in AttackCategory::ALL {
        let e = evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &cfg);
        assert!(e.succeeds(), "{cat}: p = {:.4}", e.ttest.p_value);
        assert!(e.rate_kbps > 0.0, "{cat}: rate must be positive");
    }
}

/// Table III, no-VP columns: nothing leaks without a value predictor.
#[test]
fn nothing_leaks_without_value_predictor() {
    let cfg = cfg(20);
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            if let Some(e) = try_evaluate(cat, channel, PredictorKind::None, &cfg) {
                assert!(
                    !e.succeeds(),
                    "{cat}/{channel} leaked with no VP: p = {:.4}",
                    e.ttest.p_value
                );
            }
        }
    }
}

/// Table III, persistent column: exactly Train+Test, Test+Hit and
/// Fill Up support and leak through the cache channel.
#[test]
fn persistent_channel_leaks_match_table_iii() {
    let cfg = cfg(20);
    for cat in AttackCategory::ALL {
        match try_evaluate(cat, Channel::Persistent, PredictorKind::Lvp, &cfg) {
            Some(e) => {
                assert!(cat.supports_persistent());
                assert!(e.succeeds(), "{cat}/persistent: p = {:.4}", e.ttest.p_value);
            }
            None => assert!(
                !cat.supports_persistent(),
                "{cat} should have a persistent PoC"
            ),
        }
    }
}

/// §IV-D3: the predictor type does not matter — VTAGE (and the oracle
/// variants) leak exactly like the LVP.
#[test]
fn vtage_and_oracle_leak_like_lvp() {
    let cfg = cfg(20);
    for kind in [
        PredictorKind::Vtage,
        PredictorKind::OracleLvp,
        PredictorKind::OracleVtage,
        PredictorKind::Stride,
    ] {
        let e = evaluate(AttackCategory::TrainTest, Channel::TimingWindow, kind, &cfg);
        assert!(e.succeeds(), "{kind}: p = {:.4}", e.ttest.p_value);
    }
}

/// The FCM's context must stabilise before it predicts, so the minimal
/// `confidence`-access protocol does not engage it — the attacker just
/// trains longer (`extra_training`), and the leak reappears. The attack
/// cost scales with the predictor's history depth; the leak itself is
/// still there.
#[test]
fn fcm_leaks_with_deeper_training() {
    use vpsec::attacks::AttackSetup;
    let minimal = cfg(20);
    let e = evaluate(
        AttackCategory::TrainTest,
        Channel::TimingWindow,
        PredictorKind::Fcm,
        &minimal,
    );
    assert!(
        !e.succeeds(),
        "minimal training must not engage the FCM: p = {:.4}",
        e.ttest.p_value
    );
    let deeper = ExperimentConfig {
        setup: AttackSetup {
            extra_training: 8,
            ..AttackSetup::default()
        },
        ..cfg(20)
    };
    let e = evaluate(
        AttackCategory::TrainTest,
        Channel::TimingWindow,
        PredictorKind::Fcm,
        &deeper,
    );
    assert!(
        e.succeeds(),
        "deeper training re-enables the leak: p = {:.4}",
        e.ttest.p_value
    );
}

/// The Spill Over attack distinguishes *no prediction vs correct
/// prediction* — the paper's new timing-window class — and the mapped
/// (correct-prediction) case is the fast one.
#[test]
fn spill_over_new_timing_class_direction() {
    let cfg = cfg(20);
    let e = evaluate(
        AttackCategory::SpillOver,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &cfg,
    );
    assert!(e.succeeds());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&e.mapped) + 50.0 < mean(&e.unmapped),
        "correct prediction (mapped) must be markedly faster than no prediction"
    );
}

/// §VI-B: R-type with window 3 stops Train+Test; window 1 (a no-op
/// window) does not.
#[test]
fn r_type_window_three_secures_train_test() {
    let base = cfg(25);
    let sweep = defense::window_sweep(
        AttackCategory::TrainTest,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &[1, 3],
        &base,
    );
    assert!(sweep[0].1 < 0.05, "S=1 must leak: p = {}", sweep[0].1);
    assert!(sweep[1].1 >= 0.05, "S=3 must defend: p = {}", sweep[1].1);
}

/// §VI-B: Test+Hit needs the larger window — S=5 is insufficient, S=9
/// defends (value distance 4 ⇒ threshold 2·4+1).
#[test]
fn test_hit_needs_window_nine() {
    // R(5) thins the Test+Hit signal without removing it, so this case
    // needs more trials than the others to stay comfortably significant.
    let base = cfg(40);
    let sweep = defense::window_sweep(
        AttackCategory::TestHit,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &[5, 9],
        &base,
    );
    assert!(sweep[0].1 < 0.05, "S=5 must still leak: p = {}", sweep[0].1);
    assert!(sweep[1].1 >= 0.05, "S=9 must defend: p = {}", sweep[1].1);
}

/// §VI-B: D-type stops the persistent-channel variants (and only those —
/// the timing-window variant of the same attack still leaks).
#[test]
fn d_type_blocks_persistent_but_not_timing() {
    let cfg = ExperimentConfig {
        trials: 20,
        defense: DefenseSpec {
            d_type: true,
            ..DefenseSpec::none()
        },
        ..ExperimentConfig::default()
    };
    for cat in [AttackCategory::TestHit, AttackCategory::FillUp] {
        let p = evaluate(cat, Channel::Persistent, PredictorKind::Lvp, &cfg);
        assert!(
            !p.succeeds(),
            "{cat}/persistent with D-type: p = {:.4}",
            p.ttest.p_value
        );
        let t = evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &cfg);
        assert!(t.succeeds(), "{cat}/timing with D-type must still leak");
    }
}

/// §VI-B: the combined A+R defense stops Spill Over (A-type removes the
/// no-prediction case, R-type blurs the remaining correctness signal).
#[test]
fn a_plus_r_secures_spill_over() {
    let base = cfg(25);
    let undefended = evaluate(
        AttackCategory::SpillOver,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &base,
    );
    assert!(undefended.succeeds());
    let defended_cfg = ExperimentConfig {
        defense: DefenseSpec {
            a_type: Some(AlwaysMode::History),
            r_type: Some(9),
            d_type: false,
        },
        ..base
    };
    let defended = evaluate(
        AttackCategory::SpillOver,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &defended_cfg,
    );
    assert!(
        !defended.succeeds(),
        "A+R(9) must defend Spill Over: p = {:.4}",
        defended.ttest.p_value
    );
}

/// Robustness: the attacks survive a background process polluting the
/// caches, TLB and predictor between steps (a stressor the paper's
/// clean gem5 runs did not include).
#[test]
fn attacks_survive_background_noise() {
    let noisy = ExperimentConfig {
        trials: 20,
        background_noise: true,
        ..ExperimentConfig::default()
    };
    for cat in [AttackCategory::TrainTest, AttackCategory::FillUp] {
        let e = evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &noisy);
        assert!(
            e.succeeds(),
            "{cat} under noise: p = {:.4}",
            e.ttest.p_value
        );
    }
    // And the no-VP baseline stays clean under noise too.
    let none = evaluate(
        AttackCategory::TrainTest,
        Channel::TimingWindow,
        PredictorKind::None,
        &noisy,
    );
    assert!(
        !none.succeeds(),
        "no-VP noise baseline: p = {:.4}",
        none.ttest.p_value
    );
}

/// Threat model footnote 5: a pid-aware index stops *cross-process*
/// aliasing (Train+Test no longer works between two processes without a
/// shared library) but "only increases difficulties for attacks [and]
/// does not eliminate [them]" — the sender-internal categories survive.
#[test]
fn pid_indexing_raises_the_bar_but_does_not_eliminate() {
    let pid_cfg = ExperimentConfig {
        trials: 20,
        index: IndexConfig {
            use_pid: true,
            ..IndexConfig::default()
        },
        ..ExperimentConfig::default()
    };
    let cross = evaluate(
        AttackCategory::TrainTest,
        Channel::TimingWindow,
        PredictorKind::Lvp,
        &pid_cfg,
    );
    assert!(
        !cross.succeeds(),
        "pid indexing must break cross-process aliasing: p = {:.4}",
        cross.ttest.p_value
    );
    for cat in [AttackCategory::FillUp, AttackCategory::SpillOver] {
        let internal = evaluate(cat, Channel::TimingWindow, PredictorKind::Lvp, &pid_cfg);
        assert!(
            internal.succeeds(),
            "{cat} is sender-internal and must survive pid indexing: p = {:.4}",
            internal.ttest.p_value
        );
    }
}

/// The full A+R+D stack defends every category over every channel —
/// the paper's combined-defense claim.
#[test]
fn full_defense_stack_defends_everything() {
    let cfg = ExperimentConfig {
        trials: 20,
        defense: DefenseSpec::full(9),
        ..ExperimentConfig::default()
    };
    for cat in AttackCategory::ALL {
        for channel in [Channel::TimingWindow, Channel::Persistent] {
            if let Some(e) = try_evaluate(cat, channel, PredictorKind::Lvp, &cfg) {
                assert!(
                    !e.succeeds(),
                    "{cat}/{channel} leaks through the full defense: p = {:.4}",
                    e.ttest.p_value
                );
            }
        }
    }
}
