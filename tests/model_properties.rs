//! Property-style invariants of the attack model (§V): the enumeration,
//! the reduction rules, and the taxonomy must stay mutually consistent.

use vpsec::attacks::AttackCategory;
use vpsec::model::{enumerate, rules, Action, Actor, AttackPattern, Dimension, SecretVariant};
use vpsec::taxonomy::{classify, TimingWindowClass};

/// `check` accepts a pattern iff it appears in the enumeration's
/// survivor list — the two code paths agree. The full cross product is
/// only 576 patterns, so this checks every single one instead of
/// sampling.
#[test]
fn check_agrees_with_enumeration() {
    let e = enumerate();
    for &train in &Action::step_actions() {
        for &modify in &Action::modify_actions() {
            for &trigger in &Action::step_actions() {
                let p = AttackPattern::new(train, modify, trigger);
                assert_eq!(rules::check(&p).is_ok(), e.effective.contains(&p), "{p}");
            }
        }
    }
}

/// Every survivor classifies; every survivor involves the sender
/// (only the sender can touch the secret); no survivor mixes
/// dimensions.
#[test]
fn survivor_invariants() {
    for p in enumerate().effective {
        let cat = p.category();
        assert!(cat.is_some(), "{p} must classify");
        assert!(p.actors().contains(&Actor::Sender), "{p}");
        let dims: std::collections::HashSet<_> =
            p.steps().iter().filter_map(Action::dimension).collect();
        assert_eq!(dims.len(), 1, "{p} single-dimension");
    }
}

#[test]
fn rejection_reasons_are_stable() {
    // A few canary patterns pinned to specific rejection rules, so rule
    // refactors cannot silently change the model's shape.
    use Dimension::{Data, Index};
    use SecretVariant::{DoublePrime, Prime};
    let kd_s = Action::known(Actor::Sender, Data);
    let kd_r = Action::known(Actor::Receiver, Data);
    let ki_s = Action::known(Actor::Sender, Index);
    let sd1 = Action::secret(Data, Prime);
    let sd2 = Action::secret(Data, DoublePrime);
    let si1 = Action::secret(Index, Prime);
    let cases = [
        (
            AttackPattern::new(kd_s, Action::None, kd_r),
            rules::Rejection::NoSecret,
        ),
        (
            AttackPattern::new(kd_s, Action::None, si1),
            rules::Rejection::MixedDimensions,
        ),
        (
            AttackPattern::new(sd2, Action::None, kd_s),
            rules::Rejection::NonCanonicalNaming,
        ),
        (
            AttackPattern::new(sd1, sd1, sd1),
            rules::Rejection::ModifyExtendsTrain,
        ),
        (
            AttackPattern::new(ki_s, Action::None, ki_s),
            rules::Rejection::NoSecret,
        ),
        (
            AttackPattern::new(sd1, kd_s, sd1),
            rules::Rejection::ReducibleDataModify,
        ),
        (
            AttackPattern::new(sd1, sd2, sd2),
            rules::Rejection::TriggerRepeatsState,
        ),
        (
            AttackPattern::new(ki_s, Action::None, si1),
            rules::Rejection::MalformedIndexInterference,
        ),
    ];
    for (pattern, expected) in cases {
        assert_eq!(rules::check(&pattern), Err(expected), "{pattern}");
    }
}

#[test]
fn taxonomy_covers_all_categories_consistently() {
    for cat in AttackCategory::ALL {
        let class = classify(cat).expect("every category has a timing class");
        // The class must be one with known examples — the model never
        // emits the unknown "no prediction vs incorrect" class.
        assert!(
            class.has_known_examples(),
            "{cat} landed in the unknown class"
        );
        // Spill Over and only Spill Over uses the new class.
        assert_eq!(
            class == TimingWindowClass::NoPredictionVsCorrect,
            cat == AttackCategory::SpillOver,
            "{cat}"
        );
    }
}

#[test]
fn twelve_survivors_have_table_iii_channel_support() {
    // The persistent channel exists exactly for categories whose trigger
    // fires a prediction of secret-trained data.
    let e = enumerate();
    for p in &e.effective {
        let cat = p.category().unwrap();
        let secret_trained = p.train.is_secret() || p.modify.is_secret();
        // Spill Over trains on the secret but its trigger is below
        // confidence in the unmapped case and its mapped case commits —
        // the paper excludes it from the persistent column.
        let expected = secret_trained && cat != AttackCategory::SpillOver && {
            // Modify+Test's trigger is the sender's own secret access —
            // timing only, per Table III.
            cat != AttackCategory::ModifyTest && cat != AttackCategory::TrainHit
        };
        assert_eq!(cat.supports_persistent(), expected, "{p}");
    }
}
