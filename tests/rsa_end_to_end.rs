//! End-to-end RSA attack tests: functional crypto + microarchitectural
//! leak + key reconstruction, across key shapes and seeds.

use vpsim_crypto::{leak_exponent, LeakConfig, Mpi};

fn reassemble(bits: &[bool]) -> Mpi {
    let mut m = Mpi::zero();
    for &b in bits {
        m = m.shl_bits(1);
        if b {
            m = m.add(&Mpi::one());
        }
    }
    m
}

#[test]
fn leak_reconstructs_various_exponent_shapes() {
    let cfg = LeakConfig {
        calibration_runs: 4,
        ..LeakConfig::default()
    };
    // All-ones, single-bit, alternating and irregular exponents.
    for exp in [
        Mpi::from_u64(0b1111_1111),
        Mpi::from_u64(0b1000_0000),
        Mpi::from_u64(0b1010_1010),
        Mpi::from_hex("bad5eed"),
    ] {
        let r = leak_exponent(&exp, &cfg);
        assert_eq!(
            reassemble(&r.recovered_bits),
            exp,
            "failed to reconstruct {exp}; observations: {:?}",
            r.observations
        );
        assert_eq!(r.success_rate(), 1.0);
    }
}

#[test]
fn leak_success_across_seeds() {
    // The paper reports 95.7% over 60 runs on a noisy system; our
    // simulator's noise (DRAM jitter) is milder, so we demand ≥ 95%
    // aggregate accuracy across seeds.
    let exp = Mpi::from_hex("d904d2c826");
    let mut correct = 0usize;
    let mut total = 0usize;
    for seed in 0..6u64 {
        let cfg = LeakConfig {
            seed: 0x5eed + seed,
            calibration_runs: 4,
            ..LeakConfig::default()
        };
        let r = leak_exponent(&exp, &cfg);
        correct += r
            .true_bits
            .iter()
            .zip(&r.recovered_bits)
            .filter(|(a, b)| a == b)
            .count();
        total += r.true_bits.len();
    }
    let rate = correct as f64 / total as f64;
    assert!(rate >= 0.95, "aggregate success rate {rate} below 95%");
}

#[test]
fn stolen_key_actually_decrypts() {
    // Full loop: encrypt with the public key, leak the private exponent
    // through the VPS, decrypt with the stolen bits.
    let n = Mpi::from_u64(3233);
    let e = Mpi::from_u64(17);
    let d = Mpi::from_u64(2753);
    let msg = Mpi::from_u64(123);
    let ct = Mpi::powm(&msg, &e, &n);
    let cfg = LeakConfig {
        calibration_runs: 4,
        ..LeakConfig::default()
    };
    let r = leak_exponent(&d, &cfg);
    let stolen = reassemble(&r.recovered_bits);
    assert_eq!(stolen, d, "exponent must reconstruct exactly");
    assert_eq!(Mpi::powm(&ct, &stolen, &n), msg, "stolen key decrypts");
}

#[test]
fn hardened_victim_has_no_length_channel() {
    // The Figure 6 hardening removes the classic square-vs-multiply
    // length channel: our victim iteration programs are the same length
    // for both bit values, and the *only* distinguishing access is the
    // conditional pointer-swap load.
    use vpsec::attacks::AttackSetup;
    use vpsim_crypto::victim::iteration_program;
    let setup = AttackSetup::default();
    let p1 = iteration_program(true, &setup);
    let p0 = iteration_program(false, &setup);
    assert_eq!(p1.len(), p0.len());
    let loads1 = p1.load_pcs().len();
    let loads0 = p0.load_pcs().len();
    assert_eq!(loads1, loads0 + 1, "exactly the tp load differs");
}

#[test]
fn mpi_powm_matches_modular_identities_at_scale() {
    // (a^e1)^e2 ≡ a^(e1·e2) mod p for a 512-bit-ish tower, sanity for
    // the bignum underpinning the victim.
    let p = Mpi::from_hex("ffffffffffffffffffffffffffffff61"); // 128-bit prime-ish modulus
    let a = Mpi::from_hex("123456789abcdef");
    let e1 = Mpi::from_u64(12345);
    let e2 = Mpi::from_u64(678);
    let lhs = Mpi::powm(&Mpi::powm(&a, &e1, &p), &e2, &p);
    let rhs = Mpi::powm(&a, &e1.mul(&e2), &p);
    assert_eq!(lhs, rhs);
}
