/root/repo/target/release/deps/vpsim_harness-71f6fe6655a1ecaa.d: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

/root/repo/target/release/deps/libvpsim_harness-71f6fe6655a1ecaa.rlib: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

/root/repo/target/release/deps/libvpsim_harness-71f6fe6655a1ecaa.rmeta: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

crates/harness/src/lib.rs:
crates/harness/src/campaign.rs:
crates/harness/src/exec.rs:
crates/harness/src/pool.rs:
crates/harness/src/sink.rs:
