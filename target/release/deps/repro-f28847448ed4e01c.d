/root/repo/target/release/deps/repro-f28847448ed4e01c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-f28847448ed4e01c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
