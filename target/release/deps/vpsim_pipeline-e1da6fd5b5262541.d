/root/repo/target/release/deps/vpsim_pipeline-e1da6fd5b5262541.d: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

/root/repo/target/release/deps/libvpsim_pipeline-e1da6fd5b5262541.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

/root/repo/target/release/deps/libvpsim_pipeline-e1da6fd5b5262541.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/executor.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/result.rs:
