/root/repo/target/release/deps/vpsim_crypto-e7027785a4a706d5.d: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

/root/repo/target/release/deps/libvpsim_crypto-e7027785a4a706d5.rlib: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

/root/repo/target/release/deps/libvpsim_crypto-e7027785a4a706d5.rmeta: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

crates/crypto/src/lib.rs:
crates/crypto/src/mpi.rs:
crates/crypto/src/victim.rs:
