/root/repo/target/release/deps/vpsim_isa-d8c34cfd595da334.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libvpsim_isa-d8c34cfd595da334.rlib: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libvpsim_isa-d8c34cfd595da334.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
