/root/repo/target/release/deps/vpsim_stats-fcd547600734f69f.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

/root/repo/target/release/deps/libvpsim_stats-fcd547600734f69f.rlib: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

/root/repo/target/release/deps/libvpsim_stats-fcd547600734f69f.rmeta: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rate.rs:
crates/stats/src/special.rs:
crates/stats/src/ttest.rs:
