/root/repo/target/release/deps/vpsim_mem-b1d1eebe23671252.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libvpsim_mem-b1d1eebe23671252.rlib: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libvpsim_mem-b1d1eebe23671252.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/replacement.rs:
crates/mem/src/stats.rs:
crates/mem/src/tlb.rs:
