/root/repo/target/release/deps/vpsim_bench-af3e82b2917a4bb5.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvpsim_bench-af3e82b2917a4bb5.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvpsim_bench-af3e82b2917a4bb5.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/microbench.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
