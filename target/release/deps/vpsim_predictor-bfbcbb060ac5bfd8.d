/root/repo/target/release/deps/vpsim_predictor-bfbcbb060ac5bfd8.d: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

/root/repo/target/release/deps/libvpsim_predictor-bfbcbb060ac5bfd8.rlib: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

/root/repo/target/release/deps/libvpsim_predictor-bfbcbb060ac5bfd8.rmeta: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

crates/predictor/src/lib.rs:
crates/predictor/src/defense.rs:
crates/predictor/src/fcm.rs:
crates/predictor/src/index.rs:
crates/predictor/src/lvp.rs:
crates/predictor/src/oracle.rs:
crates/predictor/src/stats.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/vtage.rs:
