/root/repo/target/release/deps/vpsim_rng-7c52b61b5208d373.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libvpsim_rng-7c52b61b5208d373.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libvpsim_rng-7c52b61b5208d373.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
