/root/repo/target/release/libvpsim_rng.rlib: /root/repo/crates/rng/src/lib.rs
