/root/repo/target/debug/libvpsim_rng.rlib: /root/repo/crates/rng/src/lib.rs
