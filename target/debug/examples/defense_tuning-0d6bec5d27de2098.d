/root/repo/target/debug/examples/defense_tuning-0d6bec5d27de2098.d: crates/core/../../examples/defense_tuning.rs

/root/repo/target/debug/examples/defense_tuning-0d6bec5d27de2098: crates/core/../../examples/defense_tuning.rs

crates/core/../../examples/defense_tuning.rs:
