/root/repo/target/debug/examples/covert_channel-ceb60f4f8b6167b5.d: crates/core/../../examples/covert_channel.rs Cargo.toml

/root/repo/target/debug/examples/libcovert_channel-ceb60f4f8b6167b5.rmeta: crates/core/../../examples/covert_channel.rs Cargo.toml

crates/core/../../examples/covert_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
