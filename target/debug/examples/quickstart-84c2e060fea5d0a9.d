/root/repo/target/debug/examples/quickstart-84c2e060fea5d0a9.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-84c2e060fea5d0a9.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
