/root/repo/target/debug/examples/attack_zoo-15220db034e7440c.d: crates/core/../../examples/attack_zoo.rs Cargo.toml

/root/repo/target/debug/examples/libattack_zoo-15220db034e7440c.rmeta: crates/core/../../examples/attack_zoo.rs Cargo.toml

crates/core/../../examples/attack_zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
