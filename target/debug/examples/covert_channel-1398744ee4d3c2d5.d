/root/repo/target/debug/examples/covert_channel-1398744ee4d3c2d5.d: crates/core/../../examples/covert_channel.rs

/root/repo/target/debug/examples/covert_channel-1398744ee4d3c2d5: crates/core/../../examples/covert_channel.rs

crates/core/../../examples/covert_channel.rs:
