/root/repo/target/debug/examples/spectre_v1-a0358a8726632c2d.d: crates/core/../../examples/spectre_v1.rs

/root/repo/target/debug/examples/spectre_v1-a0358a8726632c2d: crates/core/../../examples/spectre_v1.rs

crates/core/../../examples/spectre_v1.rs:
