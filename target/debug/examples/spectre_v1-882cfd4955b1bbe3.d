/root/repo/target/debug/examples/spectre_v1-882cfd4955b1bbe3.d: crates/core/../../examples/spectre_v1.rs Cargo.toml

/root/repo/target/debug/examples/libspectre_v1-882cfd4955b1bbe3.rmeta: crates/core/../../examples/spectre_v1.rs Cargo.toml

crates/core/../../examples/spectre_v1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
