/root/repo/target/debug/examples/rsa_key_leak-6f0a67d11d5aad14.d: crates/crypto/../../examples/rsa_key_leak.rs Cargo.toml

/root/repo/target/debug/examples/librsa_key_leak-6f0a67d11d5aad14.rmeta: crates/crypto/../../examples/rsa_key_leak.rs Cargo.toml

crates/crypto/../../examples/rsa_key_leak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
