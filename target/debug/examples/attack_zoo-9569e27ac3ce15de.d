/root/repo/target/debug/examples/attack_zoo-9569e27ac3ce15de.d: crates/core/../../examples/attack_zoo.rs

/root/repo/target/debug/examples/attack_zoo-9569e27ac3ce15de: crates/core/../../examples/attack_zoo.rs

crates/core/../../examples/attack_zoo.rs:
