/root/repo/target/debug/examples/rsa_key_leak-9ff4a874de59d290.d: crates/crypto/../../examples/rsa_key_leak.rs

/root/repo/target/debug/examples/rsa_key_leak-9ff4a874de59d290: crates/crypto/../../examples/rsa_key_leak.rs

crates/crypto/../../examples/rsa_key_leak.rs:
