/root/repo/target/debug/examples/quickstart-83c7eaeb968796d7.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-83c7eaeb968796d7: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
