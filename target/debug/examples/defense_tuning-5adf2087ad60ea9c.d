/root/repo/target/debug/examples/defense_tuning-5adf2087ad60ea9c.d: crates/core/../../examples/defense_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libdefense_tuning-5adf2087ad60ea9c.rmeta: crates/core/../../examples/defense_tuning.rs Cargo.toml

crates/core/../../examples/defense_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
