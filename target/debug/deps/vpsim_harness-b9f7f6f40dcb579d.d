/root/repo/target/debug/deps/vpsim_harness-b9f7f6f40dcb579d.d: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_harness-b9f7f6f40dcb579d.rmeta: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/campaign.rs:
crates/harness/src/exec.rs:
crates/harness/src/pool.rs:
crates/harness/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
