/root/repo/target/debug/deps/prop-6f18b874d3be6022.d: crates/mem/tests/prop.rs

/root/repo/target/debug/deps/prop-6f18b874d3be6022: crates/mem/tests/prop.rs

crates/mem/tests/prop.rs:
