/root/repo/target/debug/deps/vpsim_harness-0abb8b6440aa14f2.d: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

/root/repo/target/debug/deps/libvpsim_harness-0abb8b6440aa14f2.rlib: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

/root/repo/target/debug/deps/libvpsim_harness-0abb8b6440aa14f2.rmeta: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

crates/harness/src/lib.rs:
crates/harness/src/campaign.rs:
crates/harness/src/exec.rs:
crates/harness/src/pool.rs:
crates/harness/src/sink.rs:
