/root/repo/target/debug/deps/prop-da8304d3594ff689.d: crates/isa/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-da8304d3594ff689.rmeta: crates/isa/tests/prop.rs Cargo.toml

crates/isa/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
