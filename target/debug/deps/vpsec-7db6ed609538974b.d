/root/repo/target/debug/deps/vpsec-7db6ed609538974b.d: crates/core/src/lib.rs crates/core/src/attacks/mod.rs crates/core/src/attacks/categories.rs crates/core/src/attacks/programs.rs crates/core/src/attacks/spectre.rs crates/core/src/covert.rs crates/core/src/defense.rs crates/core/src/experiment.rs crates/core/src/model/mod.rs crates/core/src/model/action.rs crates/core/src/model/pattern.rs crates/core/src/model/rules.rs crates/core/src/taxonomy.rs Cargo.toml

/root/repo/target/debug/deps/libvpsec-7db6ed609538974b.rmeta: crates/core/src/lib.rs crates/core/src/attacks/mod.rs crates/core/src/attacks/categories.rs crates/core/src/attacks/programs.rs crates/core/src/attacks/spectre.rs crates/core/src/covert.rs crates/core/src/defense.rs crates/core/src/experiment.rs crates/core/src/model/mod.rs crates/core/src/model/action.rs crates/core/src/model/pattern.rs crates/core/src/model/rules.rs crates/core/src/taxonomy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attacks/mod.rs:
crates/core/src/attacks/categories.rs:
crates/core/src/attacks/programs.rs:
crates/core/src/attacks/spectre.rs:
crates/core/src/covert.rs:
crates/core/src/defense.rs:
crates/core/src/experiment.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/action.rs:
crates/core/src/model/pattern.rs:
crates/core/src/model/rules.rs:
crates/core/src/taxonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
