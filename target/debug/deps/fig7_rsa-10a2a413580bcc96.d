/root/repo/target/debug/deps/fig7_rsa-10a2a413580bcc96.d: crates/bench/benches/fig7_rsa.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_rsa-10a2a413580bcc96.rmeta: crates/bench/benches/fig7_rsa.rs Cargo.toml

crates/bench/benches/fig7_rsa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
