/root/repo/target/debug/deps/attack_effectiveness-ed428a3327aab37f.d: crates/core/../../tests/attack_effectiveness.rs Cargo.toml

/root/repo/target/debug/deps/libattack_effectiveness-ed428a3327aab37f.rmeta: crates/core/../../tests/attack_effectiveness.rs Cargo.toml

crates/core/../../tests/attack_effectiveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
