/root/repo/target/debug/deps/prop-72b18748fe12dfd6.d: crates/predictor/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-72b18748fe12dfd6.rmeta: crates/predictor/tests/prop.rs Cargo.toml

crates/predictor/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
