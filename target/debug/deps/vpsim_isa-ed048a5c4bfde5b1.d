/root/repo/target/debug/deps/vpsim_isa-ed048a5c4bfde5b1.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libvpsim_isa-ed048a5c4bfde5b1.rlib: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libvpsim_isa-ed048a5c4bfde5b1.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
