/root/repo/target/debug/deps/vpsim_predictor-b60c8e4106b0f151.d: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

/root/repo/target/debug/deps/vpsim_predictor-b60c8e4106b0f151: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

crates/predictor/src/lib.rs:
crates/predictor/src/defense.rs:
crates/predictor/src/fcm.rs:
crates/predictor/src/index.rs:
crates/predictor/src/lvp.rs:
crates/predictor/src/oracle.rs:
crates/predictor/src/stats.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/vtage.rs:
