/root/repo/target/debug/deps/ablations-9d5f8064be9aa3de.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-9d5f8064be9aa3de: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
