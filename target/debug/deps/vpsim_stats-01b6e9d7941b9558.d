/root/repo/target/debug/deps/vpsim_stats-01b6e9d7941b9558.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/vpsim_stats-01b6e9d7941b9558: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rate.rs:
crates/stats/src/special.rs:
crates/stats/src/ttest.rs:
