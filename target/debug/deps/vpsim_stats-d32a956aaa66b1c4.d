/root/repo/target/debug/deps/vpsim_stats-d32a956aaa66b1c4.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libvpsim_stats-d32a956aaa66b1c4.rlib: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

/root/repo/target/debug/deps/libvpsim_stats-d32a956aaa66b1c4.rmeta: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rate.rs:
crates/stats/src/special.rs:
crates/stats/src/ttest.rs:
