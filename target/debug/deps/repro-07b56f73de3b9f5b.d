/root/repo/target/debug/deps/repro-07b56f73de3b9f5b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-07b56f73de3b9f5b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
