/root/repo/target/debug/deps/vpsim_bench-80a85abcff279e9d.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_bench-80a85abcff279e9d.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/microbench.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
