/root/repo/target/debug/deps/vpsim_rng-2fb0528aee0efcc1.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/vpsim_rng-2fb0528aee0efcc1: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
