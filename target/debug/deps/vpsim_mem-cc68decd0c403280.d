/root/repo/target/debug/deps/vpsim_mem-cc68decd0c403280.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libvpsim_mem-cc68decd0c403280.rlib: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libvpsim_mem-cc68decd0c403280.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/replacement.rs:
crates/mem/src/stats.rs:
crates/mem/src/tlb.rs:
