/root/repo/target/debug/deps/repro-43ce447e0d53803d.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-43ce447e0d53803d.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
