/root/repo/target/debug/deps/fig7_rsa-79388cfdc4472dd0.d: crates/bench/benches/fig7_rsa.rs

/root/repo/target/debug/deps/fig7_rsa-79388cfdc4472dd0: crates/bench/benches/fig7_rsa.rs

crates/bench/benches/fig7_rsa.rs:
