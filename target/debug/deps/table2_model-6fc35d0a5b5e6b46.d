/root/repo/target/debug/deps/table2_model-6fc35d0a5b5e6b46.d: crates/bench/benches/table2_model.rs

/root/repo/target/debug/deps/table2_model-6fc35d0a5b5e6b46: crates/bench/benches/table2_model.rs

crates/bench/benches/table2_model.rs:
