/root/repo/target/debug/deps/table2_model-775dded0d08fa6d5.d: crates/bench/benches/table2_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_model-775dded0d08fa6d5.rmeta: crates/bench/benches/table2_model.rs Cargo.toml

crates/bench/benches/table2_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
