/root/repo/target/debug/deps/vpsim_pipeline-50a39bd1830f9773.d: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_pipeline-50a39bd1830f9773.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs Cargo.toml

crates/pipeline/src/lib.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/executor.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
