/root/repo/target/debug/deps/table3_all_attacks-c18425fbe73c7769.d: crates/bench/benches/table3_all_attacks.rs

/root/repo/target/debug/deps/table3_all_attacks-c18425fbe73c7769: crates/bench/benches/table3_all_attacks.rs

crates/bench/benches/table3_all_attacks.rs:
