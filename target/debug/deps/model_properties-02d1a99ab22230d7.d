/root/repo/target/debug/deps/model_properties-02d1a99ab22230d7.d: crates/core/../../tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-02d1a99ab22230d7: crates/core/../../tests/model_properties.rs

crates/core/../../tests/model_properties.rs:
