/root/repo/target/debug/deps/behavior-fbfd51482711899a.d: crates/pipeline/tests/behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior-fbfd51482711899a.rmeta: crates/pipeline/tests/behavior.rs Cargo.toml

crates/pipeline/tests/behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
