/root/repo/target/debug/deps/defense_window_sweep-6238b84349b566c6.d: crates/bench/benches/defense_window_sweep.rs

/root/repo/target/debug/deps/defense_window_sweep-6238b84349b566c6: crates/bench/benches/defense_window_sweep.rs

crates/bench/benches/defense_window_sweep.rs:
