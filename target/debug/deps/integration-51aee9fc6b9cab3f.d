/root/repo/target/debug/deps/integration-51aee9fc6b9cab3f.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-51aee9fc6b9cab3f: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
