/root/repo/target/debug/deps/vpsec-22fdd020628b278a.d: crates/core/src/lib.rs crates/core/src/attacks/mod.rs crates/core/src/attacks/categories.rs crates/core/src/attacks/programs.rs crates/core/src/attacks/spectre.rs crates/core/src/covert.rs crates/core/src/defense.rs crates/core/src/experiment.rs crates/core/src/model/mod.rs crates/core/src/model/action.rs crates/core/src/model/pattern.rs crates/core/src/model/rules.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/libvpsec-22fdd020628b278a.rlib: crates/core/src/lib.rs crates/core/src/attacks/mod.rs crates/core/src/attacks/categories.rs crates/core/src/attacks/programs.rs crates/core/src/attacks/spectre.rs crates/core/src/covert.rs crates/core/src/defense.rs crates/core/src/experiment.rs crates/core/src/model/mod.rs crates/core/src/model/action.rs crates/core/src/model/pattern.rs crates/core/src/model/rules.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/libvpsec-22fdd020628b278a.rmeta: crates/core/src/lib.rs crates/core/src/attacks/mod.rs crates/core/src/attacks/categories.rs crates/core/src/attacks/programs.rs crates/core/src/attacks/spectre.rs crates/core/src/covert.rs crates/core/src/defense.rs crates/core/src/experiment.rs crates/core/src/model/mod.rs crates/core/src/model/action.rs crates/core/src/model/pattern.rs crates/core/src/model/rules.rs crates/core/src/taxonomy.rs

crates/core/src/lib.rs:
crates/core/src/attacks/mod.rs:
crates/core/src/attacks/categories.rs:
crates/core/src/attacks/programs.rs:
crates/core/src/attacks/spectre.rs:
crates/core/src/covert.rs:
crates/core/src/defense.rs:
crates/core/src/experiment.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/action.rs:
crates/core/src/model/pattern.rs:
crates/core/src/model/rules.rs:
crates/core/src/taxonomy.rs:
