/root/repo/target/debug/deps/vpsim_crypto-0638e8e5de597aff.d: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_crypto-0638e8e5de597aff.rmeta: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/mpi.rs:
crates/crypto/src/victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
