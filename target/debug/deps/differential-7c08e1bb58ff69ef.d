/root/repo/target/debug/deps/differential-7c08e1bb58ff69ef.d: crates/pipeline/tests/differential.rs

/root/repo/target/debug/deps/differential-7c08e1bb58ff69ef: crates/pipeline/tests/differential.rs

crates/pipeline/tests/differential.rs:
