/root/repo/target/debug/deps/differential-b559938a2301a408.d: crates/pipeline/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-b559938a2301a408.rmeta: crates/pipeline/tests/differential.rs Cargo.toml

crates/pipeline/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
