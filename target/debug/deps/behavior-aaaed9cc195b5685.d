/root/repo/target/debug/deps/behavior-aaaed9cc195b5685.d: crates/pipeline/tests/behavior.rs

/root/repo/target/debug/deps/behavior-aaaed9cc195b5685: crates/pipeline/tests/behavior.rs

crates/pipeline/tests/behavior.rs:
