/root/repo/target/debug/deps/vpsim_pipeline-6e89af5543cdc237.d: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

/root/repo/target/debug/deps/libvpsim_pipeline-6e89af5543cdc237.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

/root/repo/target/debug/deps/libvpsim_pipeline-6e89af5543cdc237.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/executor.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/result.rs:
