/root/repo/target/debug/deps/repro-6a343e3bc5a21f72.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-6a343e3bc5a21f72.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
