/root/repo/target/debug/deps/defense_window_sweep-0c582d3bacdc4432.d: crates/bench/benches/defense_window_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_window_sweep-0c582d3bacdc4432.rmeta: crates/bench/benches/defense_window_sweep.rs Cargo.toml

crates/bench/benches/defense_window_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
