/root/repo/target/debug/deps/fig8_test_hit-59decd5ecdf2617a.d: crates/bench/benches/fig8_test_hit.rs

/root/repo/target/debug/deps/fig8_test_hit-59decd5ecdf2617a: crates/bench/benches/fig8_test_hit.rs

crates/bench/benches/fig8_test_hit.rs:
