/root/repo/target/debug/deps/vpsim_mem-1f7592ce1aeddfc7.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_mem-1f7592ce1aeddfc7.rmeta: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/replacement.rs:
crates/mem/src/stats.rs:
crates/mem/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
