/root/repo/target/debug/deps/vpsim_harness-e669f493285680e1.d: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

/root/repo/target/debug/deps/vpsim_harness-e669f493285680e1: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs

crates/harness/src/lib.rs:
crates/harness/src/campaign.rs:
crates/harness/src/exec.rs:
crates/harness/src/pool.rs:
crates/harness/src/sink.rs:
