/root/repo/target/debug/deps/determinism-6a96ceb4f376c8a5.d: crates/harness/tests/determinism.rs

/root/repo/target/debug/deps/determinism-6a96ceb4f376c8a5: crates/harness/tests/determinism.rs

crates/harness/tests/determinism.rs:
