/root/repo/target/debug/deps/ablations-66d5f29c44094be4.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-66d5f29c44094be4.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
