/root/repo/target/debug/deps/vp_speedup-31d9c78da8e5d3ed.d: crates/bench/benches/vp_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libvp_speedup-31d9c78da8e5d3ed.rmeta: crates/bench/benches/vp_speedup.rs Cargo.toml

crates/bench/benches/vp_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
