/root/repo/target/debug/deps/prop-5a81a18c1b5a6071.d: crates/crypto/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5a81a18c1b5a6071.rmeta: crates/crypto/tests/prop.rs Cargo.toml

crates/crypto/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
