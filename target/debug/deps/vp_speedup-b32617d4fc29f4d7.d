/root/repo/target/debug/deps/vp_speedup-b32617d4fc29f4d7.d: crates/bench/benches/vp_speedup.rs

/root/repo/target/debug/deps/vp_speedup-b32617d4fc29f4d7: crates/bench/benches/vp_speedup.rs

crates/bench/benches/vp_speedup.rs:
