/root/repo/target/debug/deps/prop-fee2a0a0fbcd8981.d: crates/stats/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-fee2a0a0fbcd8981.rmeta: crates/stats/tests/prop.rs Cargo.toml

crates/stats/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
