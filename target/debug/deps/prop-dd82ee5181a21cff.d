/root/repo/target/debug/deps/prop-dd82ee5181a21cff.d: crates/isa/tests/prop.rs

/root/repo/target/debug/deps/prop-dd82ee5181a21cff: crates/isa/tests/prop.rs

crates/isa/tests/prop.rs:
