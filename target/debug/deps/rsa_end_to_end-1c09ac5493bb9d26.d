/root/repo/target/debug/deps/rsa_end_to_end-1c09ac5493bb9d26.d: crates/crypto/../../tests/rsa_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/librsa_end_to_end-1c09ac5493bb9d26.rmeta: crates/crypto/../../tests/rsa_end_to_end.rs Cargo.toml

crates/crypto/../../tests/rsa_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
