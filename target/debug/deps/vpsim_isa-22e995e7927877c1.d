/root/repo/target/debug/deps/vpsim_isa-22e995e7927877c1.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/vpsim_isa-22e995e7927877c1: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
