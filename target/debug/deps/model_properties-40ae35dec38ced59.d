/root/repo/target/debug/deps/model_properties-40ae35dec38ced59.d: crates/core/../../tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-40ae35dec38ced59.rmeta: crates/core/../../tests/model_properties.rs Cargo.toml

crates/core/../../tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
