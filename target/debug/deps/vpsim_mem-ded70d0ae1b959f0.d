/root/repo/target/debug/deps/vpsim_mem-ded70d0ae1b959f0.d: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/vpsim_mem-ded70d0ae1b959f0: crates/mem/src/lib.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/hierarchy.rs crates/mem/src/replacement.rs crates/mem/src/stats.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/replacement.rs:
crates/mem/src/stats.rs:
crates/mem/src/tlb.rs:
