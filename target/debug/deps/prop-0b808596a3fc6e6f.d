/root/repo/target/debug/deps/prop-0b808596a3fc6e6f.d: crates/predictor/tests/prop.rs

/root/repo/target/debug/deps/prop-0b808596a3fc6e6f: crates/predictor/tests/prop.rs

crates/predictor/tests/prop.rs:
