/root/repo/target/debug/deps/integration-d9c2da1e427c5019.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-d9c2da1e427c5019.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
