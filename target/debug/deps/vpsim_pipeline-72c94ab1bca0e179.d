/root/repo/target/debug/deps/vpsim_pipeline-72c94ab1bca0e179.d: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

/root/repo/target/debug/deps/vpsim_pipeline-72c94ab1bca0e179: crates/pipeline/src/lib.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/executor.rs crates/pipeline/src/machine.rs crates/pipeline/src/result.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/executor.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/result.rs:
