/root/repo/target/debug/deps/vpsim_rng-8a9d4f1d903738df.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libvpsim_rng-8a9d4f1d903738df.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libvpsim_rng-8a9d4f1d903738df.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
