/root/repo/target/debug/deps/fig5_train_test-24f9fad10c8315f6.d: crates/bench/benches/fig5_train_test.rs

/root/repo/target/debug/deps/fig5_train_test-24f9fad10c8315f6: crates/bench/benches/fig5_train_test.rs

crates/bench/benches/fig5_train_test.rs:
