/root/repo/target/debug/deps/vpsim_isa-844f2bb1f0c582dd.d: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_isa-844f2bb1f0c582dd.rmeta: crates/isa/src/lib.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
