/root/repo/target/debug/deps/prop-3e5633ba8fc556a6.d: crates/stats/tests/prop.rs

/root/repo/target/debug/deps/prop-3e5633ba8fc556a6: crates/stats/tests/prop.rs

crates/stats/tests/prop.rs:
