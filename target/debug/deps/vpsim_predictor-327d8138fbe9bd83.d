/root/repo/target/debug/deps/vpsim_predictor-327d8138fbe9bd83.d: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_predictor-327d8138fbe9bd83.rmeta: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/defense.rs:
crates/predictor/src/fcm.rs:
crates/predictor/src/index.rs:
crates/predictor/src/lvp.rs:
crates/predictor/src/oracle.rs:
crates/predictor/src/stats.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/vtage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
