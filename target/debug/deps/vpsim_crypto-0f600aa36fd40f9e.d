/root/repo/target/debug/deps/vpsim_crypto-0f600aa36fd40f9e.d: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_crypto-0f600aa36fd40f9e.rmeta: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/mpi.rs:
crates/crypto/src/victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
