/root/repo/target/debug/deps/vpsim_bench-eb64a0bd2379f129.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/vpsim_bench-eb64a0bd2379f129: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/microbench.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
