/root/repo/target/debug/deps/vpsim_rng-018af2c089aa2250.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_rng-018af2c089aa2250.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
