/root/repo/target/debug/deps/table3_all_attacks-70991ed4eaff10a2.d: crates/bench/benches/table3_all_attacks.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_all_attacks-70991ed4eaff10a2.rmeta: crates/bench/benches/table3_all_attacks.rs Cargo.toml

crates/bench/benches/table3_all_attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
