/root/repo/target/debug/deps/fig5_train_test-ea805a9438d50307.d: crates/bench/benches/fig5_train_test.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_train_test-ea805a9438d50307.rmeta: crates/bench/benches/fig5_train_test.rs Cargo.toml

crates/bench/benches/fig5_train_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
