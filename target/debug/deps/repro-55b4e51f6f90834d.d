/root/repo/target/debug/deps/repro-55b4e51f6f90834d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-55b4e51f6f90834d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
