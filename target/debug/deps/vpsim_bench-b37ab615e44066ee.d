/root/repo/target/debug/deps/vpsim_bench-b37ab615e44066ee.d: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvpsim_bench-b37ab615e44066ee.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvpsim_bench-b37ab615e44066ee.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs crates/bench/src/microbench.rs crates/bench/src/reports.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
crates/bench/src/microbench.rs:
crates/bench/src/reports.rs:
crates/bench/src/workloads.rs:
