/root/repo/target/debug/deps/rsa_end_to_end-2d144cfe26357991.d: crates/crypto/../../tests/rsa_end_to_end.rs

/root/repo/target/debug/deps/rsa_end_to_end-2d144cfe26357991: crates/crypto/../../tests/rsa_end_to_end.rs

crates/crypto/../../tests/rsa_end_to_end.rs:
