/root/repo/target/debug/deps/vpsim_crypto-4c9fddc3cad36cb6.d: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

/root/repo/target/debug/deps/vpsim_crypto-4c9fddc3cad36cb6: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

crates/crypto/src/lib.rs:
crates/crypto/src/mpi.rs:
crates/crypto/src/victim.rs:
