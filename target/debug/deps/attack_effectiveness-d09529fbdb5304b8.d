/root/repo/target/debug/deps/attack_effectiveness-d09529fbdb5304b8.d: crates/core/../../tests/attack_effectiveness.rs

/root/repo/target/debug/deps/attack_effectiveness-d09529fbdb5304b8: crates/core/../../tests/attack_effectiveness.rs

crates/core/../../tests/attack_effectiveness.rs:
