/root/repo/target/debug/deps/vpsim_harness-52ba3dd6c1f6ffd0.d: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_harness-52ba3dd6c1f6ffd0.rmeta: crates/harness/src/lib.rs crates/harness/src/campaign.rs crates/harness/src/exec.rs crates/harness/src/pool.rs crates/harness/src/sink.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/campaign.rs:
crates/harness/src/exec.rs:
crates/harness/src/pool.rs:
crates/harness/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
