/root/repo/target/debug/deps/vpsim_crypto-e828563f3fc53922.d: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

/root/repo/target/debug/deps/libvpsim_crypto-e828563f3fc53922.rlib: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

/root/repo/target/debug/deps/libvpsim_crypto-e828563f3fc53922.rmeta: crates/crypto/src/lib.rs crates/crypto/src/mpi.rs crates/crypto/src/victim.rs

crates/crypto/src/lib.rs:
crates/crypto/src/mpi.rs:
crates/crypto/src/victim.rs:
