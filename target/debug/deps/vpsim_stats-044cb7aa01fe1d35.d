/root/repo/target/debug/deps/vpsim_stats-044cb7aa01fe1d35.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs Cargo.toml

/root/repo/target/debug/deps/libvpsim_stats-044cb7aa01fe1d35.rmeta: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/histogram.rs crates/stats/src/rate.rs crates/stats/src/special.rs crates/stats/src/ttest.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/histogram.rs:
crates/stats/src/rate.rs:
crates/stats/src/special.rs:
crates/stats/src/ttest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
