/root/repo/target/debug/deps/determinism-48187d1b78f6c9eb.d: crates/harness/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-48187d1b78f6c9eb.rmeta: crates/harness/tests/determinism.rs Cargo.toml

crates/harness/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
