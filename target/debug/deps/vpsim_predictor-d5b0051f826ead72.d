/root/repo/target/debug/deps/vpsim_predictor-d5b0051f826ead72.d: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

/root/repo/target/debug/deps/libvpsim_predictor-d5b0051f826ead72.rlib: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

/root/repo/target/debug/deps/libvpsim_predictor-d5b0051f826ead72.rmeta: crates/predictor/src/lib.rs crates/predictor/src/defense.rs crates/predictor/src/fcm.rs crates/predictor/src/index.rs crates/predictor/src/lvp.rs crates/predictor/src/oracle.rs crates/predictor/src/stats.rs crates/predictor/src/stride.rs crates/predictor/src/vtage.rs

crates/predictor/src/lib.rs:
crates/predictor/src/defense.rs:
crates/predictor/src/fcm.rs:
crates/predictor/src/index.rs:
crates/predictor/src/lvp.rs:
crates/predictor/src/oracle.rs:
crates/predictor/src/stats.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/vtage.rs:
