/root/repo/target/debug/deps/prop-549f75a91ccf6f44.d: crates/crypto/tests/prop.rs

/root/repo/target/debug/deps/prop-549f75a91ccf6f44: crates/crypto/tests/prop.rs

crates/crypto/tests/prop.rs:
