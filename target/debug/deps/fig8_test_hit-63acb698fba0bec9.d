/root/repo/target/debug/deps/fig8_test_hit-63acb698fba0bec9.d: crates/bench/benches/fig8_test_hit.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_test_hit-63acb698fba0bec9.rmeta: crates/bench/benches/fig8_test_hit.rs Cargo.toml

crates/bench/benches/fig8_test_hit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
